(** Paged backing store for the BDD node table.

    The manager's packed stride-4 node records live in fixed-size
    pages ([1 lsl page_bits] slots each) behind a pinning buffer pool:
    slot [n] is on page [n lsr page_bits] at record
    [(n land page_mask) * 4].  Without a byte cap every page is
    permanently resident and the arena is just a two-level array; with
    [max_bytes] set, cold pages spill to a CRC-32-checked scratch file
    and fault back in through clock/second-chance replacement.

    The record is transparent so the manager's hot path can inline the
    page lookup and test residency with a physical equality against
    {!empty_page}; everything that can fault or do IO goes through the
    functions below.  All file-system transitions run {!Faults.fs_op}
    hooks first and mutate the pool only after the IO succeeded, so an
    injected crash or real IO error surfaces as
    [Solver_error.Error (Internal _)] with the arena left consistent.
    Uncapped arenas never touch the file system and emit no hooks. *)

type t = {
  page_bits : int;
  page_mask : int;
  slots_per_page : int;
  ints_per_page : int;  (** [slots_per_page * 4] *)
  capped : bool;  (** false = all pages resident forever, no IO ever *)
  max_resident : int;
  mutable pages : int array array;
      (** the spine; entry [== empty_page] means the page is spilled *)
  mutable num_pages : int;
  mutable resident : int;
  mutable pins : int array;
  mutable refbit : Bytes.t;
  mutable dirty : Bytes.t;
  mutable on_disk : Bytes.t;
  mutable hand : int;
  spill_path : string option;
  mutable spill_real_path : string option;
  mutable spill_fd : Unix.file_descr option;
  spill_buf : Bytes.t;
  slot_bytes : int;
  mutable tail : int;
  mutable evictions : int;
  mutable fault_ins : int;
  mutable spill_writes : int;
  mutable spill_reads : int;
  mutable peak_resident : int;
}

val empty_page : int array
(** The shared zero-length sentinel marking a spilled page.  All
    zero-length [int array]s are one runtime atom, so
    [a.pages.(p) != empty_page] is a correct one-instruction residency
    test. *)

val default_page_bits : int
(** 12: 4096 slots, 128 KiB of packed records per page. *)

val create : ?page_bits:int -> ?max_bytes:int -> ?spill_path:string -> unit -> t
(** Empty arena (no pages).  [page_bits] must be in [\[4, 22\]].
    [max_bytes] caps resident page bytes (clamped to at least three
    pages: the pinned terminal page, the allocation tail and one
    victim).  [spill_path] names the scratch file; default is a fresh
    temp file, created lazily on first spill. *)

val capacity : t -> int
(** Total slots across all pages, resident or spilled. *)

val total_bytes : t -> int
(** Bytes of node records across all pages — the budget dimension. *)

val resident_bytes : t -> int
val pinned_pages : t -> int

val add_page : t -> int
(** Append a fresh resident page of [-1]s and return its index,
    evicting under the cap first. *)

val fault_in : t -> int -> int array
(** Return page [p]'s array, reading it back from the spill file (and
    evicting to make room) if it is not resident.  A CRC mismatch or
    IO failure raises with the page still spilled. *)

val pin : t -> int -> unit
(** Fault the page in if needed and make it ineligible for eviction
    until the matching {!unpin}.  Pins nest. *)

val unpin : t -> int -> unit

val set_tail : t -> int -> unit
(** Move the allocation-tail pin from the previous tail page to [p]:
    the page [mk] bump-allocates into is never evicted under it. *)

val swap : t -> int array array -> int -> unit
(** [swap a fresh n] replaces the entire page set with the first [n]
    pages of [fresh] (all taken as resident and dirty), invalidates
    every old spill slot, re-pins the terminal page and then evicts
    back under the cap.  Used by compacting GC to install the
    level-clustered copy. *)

val dispose : t -> unit
(** Close and delete the spill file, if one was created.  The arena's
    resident pages remain readable. *)

val sweep_stale_spills : ?max_age_s:float -> dir:string -> unit -> int
(** Remove orphaned spill scratch files under [dir]: pid-named debris
    ([arena.<pid>.spill], [whalelam-arena.<pid>.<rand>.spill]) whose
    creator is dead and whose mtime is at least [max_age_s] seconds
    old (default 60).  Returns the number of files removed.  See
    {!Bdd.sweep_stale_spills}. *)
