(* Paged backing store for the BDD node table.

   Nodes stay packed stride-4 [var; low; high; next], but the single
   flat array becomes a spine of fixed-size pages: slot [n] lives on
   page [n lsr page_bits] at record [n land page_mask].  An uncapped
   arena is just that two-level lookup — every page is resident
   forever, and the only cost over the old flat array is one extra
   indirection that the level-clustered compacting GC pays back in
   locality.

   With a byte cap ([max_bytes]) the spine doubles as a buffer pool:
   at most [max_resident] pages are in memory, the rest live in a
   spill file (one fixed slot per page, CRC-32 trailer), and a
   non-resident page's spine entry is the shared [empty_page] sentinel
   (the zero-length array atom, so the fast-path test is one physical
   equality).  Replacement is clock/second-chance over reference bits
   the manager sets on access; pinned pages (terminal page, allocation
   tail, explicit pin scopes) are never victims.  Pages are spilled
   through a write barrier: a page with a valid, clean disk copy is
   dropped without IO.

   Failure discipline: every file-system transition runs a
   [Faults.fs_op] hook first and mutates the pool only after the IO
   succeeded, so an injected crash or a real [Unix_error] leaves the
   arena exactly as it was — the failure surfaces as a structured
   [Solver_error.Error (Internal _)] (or the injector's own exception)
   and the arena remains fully usable.  A CRC mismatch on fault-in is
   reported the same way, before a single corrupt word is installed.
   Uncapped arenas never touch the file system and run zero hooks. *)

type t = {
  page_bits : int;
  page_mask : int;
  slots_per_page : int;
  ints_per_page : int;
  capped : bool;
  max_resident : int;
  mutable pages : int array array; (* spine; [empty_page] = spilled *)
  mutable num_pages : int;
  mutable resident : int;
  mutable pins : int array; (* pin counts per page; > 0 = not evictable *)
  mutable refbit : Bytes.t; (* clock second-chance bits *)
  mutable dirty : Bytes.t; (* page differs from its disk copy *)
  mutable on_disk : Bytes.t; (* spill slot holds a valid copy *)
  mutable hand : int; (* clock position *)
  spill_path : string option;
  mutable spill_real_path : string option; (* resolved at first spill *)
  mutable spill_fd : Unix.file_descr option;
  spill_buf : Bytes.t; (* one-slot IO scratch, [slot_bytes] long *)
  slot_bytes : int; (* on-disk bytes per page incl. CRC trailer *)
  mutable tail : int; (* tail-pinned page (bump-allocation target), -1 = none *)
  mutable evictions : int;
  mutable fault_ins : int;
  mutable spill_writes : int;
  mutable spill_reads : int;
  mutable peak_resident : int;
}

(* All zero-length arrays are one runtime atom, so a real (non-empty)
   page can never be physically equal to this sentinel. *)
let empty_page : int array = [||]

let default_page_bits = 12

let internal fmt = Printf.ksprintf (fun msg -> raise (Solver_error.Error (Solver_error.Internal msg))) fmt

let create ?(page_bits = default_page_bits) ?max_bytes ?spill_path () =
  if page_bits < 4 || page_bits > 22 then invalid_arg "Node_arena.create: page_bits must be in [4, 22]";
  let slots_per_page = 1 lsl page_bits in
  let ints_per_page = slots_per_page * 4 in
  let page_bytes = ints_per_page * 8 in
  let capped, max_resident =
    match max_bytes with
    | None -> (false, max_int)
    | Some b ->
      if b <= 0 then invalid_arg "Node_arena.create: max_bytes must be positive";
      (* At least the permanently pinned terminal page, the allocation
         tail and one victim candidate, or the pool cannot turn over. *)
      (true, max 3 (b / page_bytes))
  in
  let spine = 8 in
  {
    page_bits;
    page_mask = slots_per_page - 1;
    slots_per_page;
    ints_per_page;
    capped;
    max_resident;
    pages = Array.make spine empty_page;
    num_pages = 0;
    resident = 0;
    pins = Array.make spine 0;
    refbit = Bytes.make spine '\000';
    dirty = Bytes.make spine '\000';
    on_disk = Bytes.make spine '\000';
    hand = 0;
    spill_path;
    spill_real_path = None;
    spill_fd = None;
    spill_buf = Bytes.create ((ints_per_page * 8) + 8);
    slot_bytes = (ints_per_page * 8) + 8;
    tail = -1;
    evictions = 0;
    fault_ins = 0;
    spill_writes = 0;
    spill_reads = 0;
    peak_resident = 0;
  }

let capacity a = a.num_pages * a.slots_per_page
let page_bytes a = a.ints_per_page * 8
let total_bytes a = a.num_pages * page_bytes a
let resident_bytes a = a.resident * page_bytes a

let pinned_pages a =
  let c = ref 0 in
  for p = 0 to a.num_pages - 1 do
    if a.pins.(p) > 0 then incr c
  done;
  !c

(* --- Spill file --- *)

(* Scratch names embed the creator's pid ([arena.<pid>.spill] when a
   driver points [spill_path] into its store, or
   [whalelam-arena.<pid>.<rand>.spill] in the temp directory) so
   {!sweep_stale_spills} can tell abandoned debris from a live solve's
   working file. *)
let temp_spill_prefix () = Printf.sprintf "whalelam-arena.%d." (Unix.getpid ())

let spill_owner_pid name =
  match String.split_on_char '.' name with
  | base :: pid :: rest when base = "arena" || base = "whalelam-arena" -> (
    match List.rev rest with
    | "spill" :: _ -> int_of_string_opt pid
    | _ -> None)
  | _ -> None

(* Remove orphaned spill scratch files under [dir] — debris a SIGKILLed
   capped solve had no chance to [dispose].  Triple guard before
   deleting: the name's embedded pid is not ours, that pid is no longer
   alive (ESRCH; EPERM means alive-but-foreign, keep it), and the file
   has not been touched for [max_age_s] — so a live solve's scratch is
   never touched, even across pid reuse.  Returns the removal count. *)
let sweep_stale_spills ?(max_age_s = 60.0) ~dir () =
  let self = Unix.getpid () in
  let now = Unix.gettimeofday () in
  let removed = ref 0 in
  (match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        match spill_owner_pid name with
        | Some pid when pid <> self ->
          let alive =
            match Unix.kill pid 0 with
            | () -> true
            | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
            | exception Unix.Unix_error _ -> true
          in
          if not alive then begin
            let path = Filename.concat dir name in
            match Unix.stat path with
            | st when now -. st.Unix.st_mtime >= max_age_s ->
              Faults.fs_op ("remove " ^ path);
              (try Sys.remove path with Sys_error _ -> ());
              incr removed
            | _ -> ()
            | exception Unix.Unix_error _ -> ()
          end
        | Some _ | None -> ())
      entries);
  !removed

let ensure_fd a =
  match a.spill_fd with
  | Some fd -> fd
  | None ->
    Faults.fs_op "arena-spill-open";
    let path =
      match a.spill_path with
      | Some p -> p
      | None -> Filename.temp_file (temp_spill_prefix ()) ".spill"
    in
    (match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o600 with
    | fd ->
      a.spill_real_path <- Some path;
      a.spill_fd <- Some fd;
      fd
    | exception Unix.Unix_error (e, _, _) ->
      internal "arena: cannot open spill file %s: %s" path (Unix.error_message e))

let seek_slot fd a p = ignore (Unix.lseek fd (p * a.slot_bytes) Unix.SEEK_SET)

let write_all fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd buf !off (len - !off) in
    if n <= 0 then raise (Unix.Unix_error (Unix.EIO, "write", ""));
    off := !off + n
  done

let read_all fd buf =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    let n = Unix.read fd buf !off (len - !off) in
    if n <= 0 then raise (Unix.Unix_error (Unix.EIO, "read", ""));
    off := !off + n
  done

(* Close and delete the scratch file; [dispose]'s body, shared with the
   spill-write failure path. *)
let close_spill a =
  (match a.spill_fd with
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    a.spill_fd <- None
  | None -> ());
  match a.spill_real_path with
  | Some p ->
    (try Sys.remove p with Sys_error _ -> ());
    a.spill_real_path <- None
  | None -> ()

let spill_write a p pg =
  let fd = ensure_fd a in
  let buf = a.spill_buf in
  let data_bytes = a.ints_per_page * 8 in
  for i = 0 to a.ints_per_page - 1 do
    Bytes.set_int64_le buf (i * 8) (Int64.of_int pg.(i))
  done;
  let crc = Crc32.update 0 (Bytes.unsafe_to_string buf) ~pos:0 ~len:data_bytes in
  Bytes.set_int64_le buf data_bytes (Int64.of_int crc);
  (try
     Faults.fs_op "arena-spill-write";
     seek_slot fd a p;
     write_all fd buf
   with Unix.Unix_error (e, _, _) ->
     (* A failed spill (disk full, I/O error) aborts the solve with a
        structured error before any pool state mutates; release the
        scratch eagerly — the manager is dead to further spilling, and
        holding the fd until [dispose] would pin disk space exactly
        when the disk just ran out. *)
     close_spill a;
     internal "arena: spill write failed for page %d: %s" p (Unix.error_message e));
  a.spill_writes <- a.spill_writes + 1

let spill_read a p pg =
  let fd =
    match a.spill_fd with
    | Some fd -> fd
    | None -> internal "arena: page %d marked on disk but no spill file exists" p
  in
  let buf = a.spill_buf in
  let data_bytes = a.ints_per_page * 8 in
  Faults.fs_op "arena-spill-read";
  (try
     seek_slot fd a p;
     read_all fd buf
   with Unix.Unix_error (e, _, _) -> internal "arena: spill read failed for page %d: %s" p (Unix.error_message e));
  let stored = Int64.to_int (Bytes.get_int64_le buf data_bytes) land 0xFFFFFFFF in
  let actual = Crc32.update 0 (Bytes.unsafe_to_string buf) ~pos:0 ~len:data_bytes in
  if stored <> actual then
    internal "arena: spill page %d checksum mismatch (slot says crc32 %s, content is %s)" p (Crc32.to_hex stored)
      (Crc32.to_hex actual);
  for i = 0 to a.ints_per_page - 1 do
    pg.(i) <- Int64.to_int (Bytes.get_int64_le buf (i * 8))
  done;
  a.spill_reads <- a.spill_reads + 1

(* --- Replacement --- *)

(* Drop one resident page.  The write barrier: only dirty pages (or
   pages that never hit the disk) are written; a clean page with a
   valid slot is detached for free.  Any failure propagates before the
   pool is touched, so the page simply stays resident. *)
let evict_page a p =
  let pg = a.pages.(p) in
  if Bytes.get a.dirty p = '\001' || Bytes.get a.on_disk p = '\000' then begin
    spill_write a p pg;
    Bytes.set a.on_disk p '\001';
    Bytes.set a.dirty p '\000'
  end;
  if a.capped then Faults.fs_op "arena-evict";
  a.pages.(p) <- empty_page;
  a.resident <- a.resident - 1;
  a.evictions <- a.evictions + 1

(* One clock sweep: skip spilled and pinned pages, give referenced
   pages a second chance, evict the first quiescent one.  Bounded at
   two revolutions; false = everything evictable is pinned, and the
   caller runs over cap rather than deadlock. *)
let evict_one a =
  let n = a.num_pages in
  let budget = ref ((2 * n) + 1) in
  let victim = ref (-1) in
  while !victim < 0 && !budget > 0 do
    decr budget;
    let p = a.hand in
    a.hand <- (if p + 1 >= n then 0 else p + 1);
    if a.pages.(p) != empty_page && a.pins.(p) = 0 then
      if Bytes.get a.refbit p = '\001' then Bytes.set a.refbit p '\000' else victim := p
  done;
  if !victim >= 0 then begin
    evict_page a !victim;
    true
  end
  else false

let make_room a = if a.capped then while a.resident >= a.max_resident && evict_one a do () done

let note_resident a =
  a.resident <- a.resident + 1;
  if a.resident > a.peak_resident then a.peak_resident <- a.resident

(* --- Pool operations --- *)

let fault_in a p =
  if p < 0 || p >= a.num_pages then invalid_arg "Node_arena.fault_in: page out of range";
  let cur = a.pages.(p) in
  if cur != empty_page then cur
  else begin
    Faults.fs_op "arena-fault-in";
    if Bytes.get a.on_disk p = '\000' then internal "arena: page %d faulted in with no disk copy" p;
    make_room a;
    let pg = Array.make a.ints_per_page (-1) in
    spill_read a p pg;
    (* Only now is the pool mutated: a failed read leaves the page
       spilled and the arena consistent. *)
    a.pages.(p) <- pg;
    note_resident a;
    Bytes.set a.refbit p '\001';
    Bytes.set a.dirty p '\000';
    a.fault_ins <- a.fault_ins + 1;
    pg
  end

let pin a p =
  if p < 0 || p >= a.num_pages then invalid_arg "Node_arena.pin: page out of range";
  if a.capped then Faults.fs_op "arena-pin";
  if a.pages.(p) == empty_page then ignore (fault_in a p);
  a.pins.(p) <- a.pins.(p) + 1

let unpin a p =
  if p < 0 || p >= a.num_pages || a.pins.(p) <= 0 then invalid_arg "Node_arena.unpin: page not pinned";
  a.pins.(p) <- a.pins.(p) - 1

let set_tail a p =
  let old = a.tail in
  a.tail <- p;
  pin a p;
  if old >= 0 then unpin a old

let grow_spine a want =
  if want > Array.length a.pages then begin
    let cap = ref (max 8 (Array.length a.pages)) in
    while !cap < want do
      cap := !cap * 2
    done;
    let cap = !cap in
    let pages = Array.make cap empty_page in
    Array.blit a.pages 0 pages 0 a.num_pages;
    a.pages <- pages;
    let pins = Array.make cap 0 in
    Array.blit a.pins 0 pins 0 a.num_pages;
    a.pins <- pins;
    let grow_bytes b =
      let b' = Bytes.make cap '\000' in
      Bytes.blit b 0 b' 0 (Bytes.length b);
      b'
    in
    a.refbit <- grow_bytes a.refbit;
    a.dirty <- grow_bytes a.dirty;
    a.on_disk <- grow_bytes a.on_disk
  end

let add_page a =
  let p = a.num_pages in
  grow_spine a (p + 1);
  make_room a;
  a.num_pages <- p + 1;
  a.pages.(p) <- Array.make a.ints_per_page (-1);
  (* A fresh page has no disk copy yet, so it is born dirty. *)
  Bytes.set a.dirty p '\001';
  Bytes.set a.on_disk p '\000';
  Bytes.set a.refbit p '\001';
  a.pins.(p) <- 0;
  note_resident a;
  p

(* Compaction hand-off: replace the whole page set with [fresh] (all
   resident, freshly built outside the pool), drop every old page and
   every stale spill slot, and only then squeeze back under the cap. *)
let swap a fresh n =
  if n > Array.length fresh then invalid_arg "Node_arena.swap";
  grow_spine a n;
  let old_n = a.num_pages in
  for p = 0 to n - 1 do
    a.pages.(p) <- fresh.(p);
    a.pins.(p) <- 0;
    Bytes.set a.dirty p '\001';
    Bytes.set a.on_disk p '\000';
    Bytes.set a.refbit p '\001'
  done;
  for p = n to old_n - 1 do
    a.pages.(p) <- empty_page;
    a.pins.(p) <- 0;
    Bytes.set a.dirty p '\000';
    Bytes.set a.on_disk p '\000';
    Bytes.set a.refbit p '\000'
  done;
  a.num_pages <- n;
  a.resident <- n;
  if a.resident > a.peak_resident then a.peak_resident <- a.resident;
  a.hand <- 0;
  a.tail <- -1;
  (* The terminal page is permanently pinned (re-established here
     because the pin counts were reset). *)
  if n > 0 then a.pins.(0) <- 1;
  if a.capped then while a.resident > a.max_resident && evict_one a do () done

let dispose a = close_spill a
