(* Hash-consed OBDD manager.

   Nodes are packed stride-4 records [var; low; high; next]; slot 0 and
   1 are the terminals.  The packing keeps a node's fields on one cache
   line — the kernels are memory-latency bound on large working sets.
   Storage is a {!Node_arena}: fixed-size pages of packed records
   behind a pinning buffer pool.  Slot [n] lives on page
   [n lsr page_bits] at record [n land page_mask]; an uncapped arena
   keeps every page resident forever, so the accessor is one extra
   indirection over the old flat array, while a byte-capped arena
   spills cold pages to a CRC'd scratch file and faults them back in
   on access.  The unique table is a chained hash whose bucket array
   tracks the arena capacity (load factor <= 1); chains are threaded
   through [next].  Freed slots are threaded through [next] as a free
   list and marked with [var = -1].

   The operation cache is a single direct-mapped array with stride-5
   entries [op; a; b; c; result]; all memoized operations share it,
   distinguished by [op].  Hit/miss counters are kept per operation
   class.  The hot binary connectives (and/or/diff) have specialized
   recursive kernels with their terminal rules inlined; the generic
   [apply] survives only for the rare connectives (xor/imp/biimp).

   GC is mark-sweep from registered roots and is only ever invoked
   explicitly, so in-flight intermediate results cannot be collected.
   Two collection modes exist per manager:

   - [Sweep] (the default for {!create}) frees dead slots in place and
     never renumbers, so raw handles held anywhere stay valid — the
     historical behavior every existing client was written against.

   - [Compact] (chosen by the solver layers) renumbers the survivors,
     clustering them by variable level so that the recursive kernels —
     which walk level by level — touch consecutive slots and therefore
     consecutive pages.  Renumbering requires every retained handle to
     be reachable through the remap protocol: [add_root] refs and
     [add_root_list] lists are rewritten in place, and [on_remap]
     hooks let layers with private handle storage rewrite themselves.
     [add_root_fn] functions are marked but NOT remapped; under
     [Compact] their handles must also be covered by a ref, list or
     hook.  The op cache is rebuilt through the relocation map, so
     warm entries survive compaction.

   In both modes surviving cache entries are only those whose operands
   and result are all live (a freed handle may be reused by a later
   [mk], so other entries would be unsound to keep).  Marking uses a
   persistent byte buffer and an explicit stack, both reused across
   collections, so GC does no per-call allocation and cannot overflow
   the OCaml stack on deep BDDs.  [support] and [node_count] likewise
   use an explicit stack with a reusable visited-stamp array instead
   of per-call hash tables.

   Reads of node fields may hold a page array across recursive calls:
   eviction detaches a page from the pool without mutating the array,
   and a live node's [var]/[low]/[high] are immutable outside GC, so a
   detached snapshot is always coherent for those fields.  Writers
   never hold a page across a call that can fault. *)

module A = Node_arena

type t = int

type gc_mode = Sweep | Compact

type varmap = {
  map_id : int;
  map : int array; (* indexed by variable; identity beyond its length *)
  monotone : bool; (* non-decreasing over all variables: order-preserving
                      on any support it is injective on *)
  identity : bool;
}

(* Operation classes for the per-class cache counters. *)
let cl_and = 0
let cl_or = 1
let cl_diff = 2
let cl_apply_other = 3 (* xor / imp / biimp *)
let cl_not = 4
let cl_ite = 5
let cl_exist = 6
let cl_relprod = 7
let cl_replace = 8
let n_classes = 9
let class_names = [| "and"; "or"; "diff"; "apply-other"; "not"; "ite"; "exist"; "relprod"; "replace" |]

type man = {
  arena : A.t; (* paged node storage; slot n = page (n lsr pbits), record (n land pmask) *)
  pbits : int; (* copies of the arena geometry, saving a load on the hot path *)
  pmask : int;
  mode : gc_mode;
  mutable buckets : int array; (* heads, -1 = empty *)
  mutable free_head : int;
  mutable num_slots : int; (* slots ever allocated, including freed *)
  mutable num_free : int;
  mutable peak_live : int;
  mutable nvars : int;
  mutable cache : int array;
  mutable cache_mask : int;
  cache_h : int array; (* per-class hits *)
  cache_m : int array; (* per-class misses *)
  mutable map_counter : int;
  mutable roots : t ref list;
  mutable root_lists : t list ref list;
  mutable root_fns : (unit -> t list) list;
  mutable remap_hooks : ((t -> t) -> unit) list;
  mutable gcs : int;
  mutable marks : Bytes.t; (* persistent GC mark buffer *)
  mutable stack : int array; (* persistent traversal stack (GC / support / node_count) *)
  mutable visited : int array; (* node visit stamps for support/node_count *)
  mutable var_seen : int array; (* variable visit stamps for support *)
  mutable stamp : int;
  mutable allocs : int; (* total fresh-node allocations, ever *)
  mutable budget : Budget.t option;
  (* Compaction scratch, retained across collections like [marks]: the
     previous cache array (swapped back in remapped), and the
     relocation / destination-order tables.  Without these a compacting
     GC allocates and frees ~10 MB per collection on a gantt-sized
     table — major-heap churn the free-list sweep never pays. *)
  mutable cache_scratch : int array;
  mutable reloc_scratch : int array;
  mutable order_scratch : int array;
}

exception Limit_exceeded of Budget.reason

(* The budget is tested on the fresh-allocation slow path of [mk] only,
   once every [budget_check_interval] allocations: cache-hit lookups
   (the vast majority of [mk] calls on a warm solve) pay nothing, and
   the live-node count can overshoot a limit by at most the interval.
   Raising here is safe at any point: the new node is not yet linked
   into the table, completed operations are already cached, and
   in-flight intermediates are simply garbage for the next [gc]. *)
let budget_check_interval = 4096

let set_budget m b = m.budget <- b
let budget m = m.budget
let allocations m = m.allocs
let gc_mode m = m.mode

let bdd_false = 0
let bdd_true = 1
let terminal_var = max_int

let is_const n = n < 2
let is_true n = n = 1
let is_false n = n = 0

(* --- Paged node access ---

   The fast path is: two loads (spine, page), a physical-equality test
   against the empty-page atom, and the indexed read.  [fault_page] is
   the out-of-line slow path; on an uncapped arena it is unreachable
   (every page stays resident).  The reference bit feeding clock
   replacement is only maintained on capped arenas, keeping the common
   uncapped manager free of the extra store. *)

let[@inline never] fault_page m p = A.fault_in m.arena p

let[@inline] node_page m n =
  let a = m.arena in
  let p = n lsr m.pbits in
  let pg = a.A.pages.(p) in
  if pg != A.empty_page then begin
    if a.A.capped then Bytes.unsafe_set a.A.refbit p '\001';
    pg
  end
  else fault_page m p

(* Page fetch for writers: additionally marks the page dirty so the
   eviction write barrier re-spills it.  Callers must finish their
   writes before the next call that can fault. *)
let[@inline] wr_page m n =
  let a = m.arena in
  let p = n lsr m.pbits in
  let pg = a.A.pages.(p) in
  let pg = if pg != A.empty_page then pg else fault_page m p in
  if a.A.capped then begin
    Bytes.unsafe_set a.A.refbit p '\001';
    Bytes.unsafe_set a.A.dirty p '\001'
  end;
  pg

let[@inline] nvar m n = (node_page m n).((n land m.pmask) * 4)
let[@inline] nlow m n = (node_page m n).(((n land m.pmask) * 4) + 1)
let[@inline] nhigh m n = (node_page m n).(((n land m.pmask) * 4) + 2)
let[@inline] nnext m n = (node_page m n).(((n land m.pmask) * 4) + 3)

let var m n =
  if is_const n then invalid_arg "Bdd.var: terminal";
  nvar m n

let low m n =
  if is_const n then invalid_arg "Bdd.low: terminal";
  nlow m n

let high m n =
  if is_const n then invalid_arg "Bdd.high: terminal";
  nhigh m n

(* Level of a node with terminals at the bottom of the order.  The
   terminal slots hold [terminal_var], so the plain read is already
   the level. *)
let level m n = nvar m n

let live_nodes m = m.num_slots - 2 - m.num_free
let peak_live_nodes m = m.peak_live
let reset_peak m = m.peak_live <- live_nodes m
let gc_count m = m.gcs

let cache_stats m =
  let h = ref 0 and mi = ref 0 in
  for c = 0 to n_classes - 1 do
    h := !h + m.cache_h.(c);
    mi := !mi + m.cache_m.(c)
  done;
  (!h, !mi)

let cache_stats_by_class m = Array.to_list (Array.mapi (fun c name -> (name, m.cache_h.(c), m.cache_m.(c))) class_names)

let cache_hit_rate m =
  let h, mi = cache_stats m in
  if h + mi = 0 then 0.0 else float_of_int h /. float_of_int (h + mi)

let nvars m = m.nvars
let extend_vars m n = if n > m.nvars then m.nvars <- n

let hash3 a b c = (a * 12582917) lxor (b * 4256249) lxor (c * 741457)

let sweep_stale_spills = A.sweep_stale_spills

let create ?(node_hint = 1 lsl 16) ?(cache_bits = 16) ?page_bits ?max_bytes ?spill_path ?(gc_mode = Sweep) ~nvars () =
  (* A capped manager bound for the temp directory sweeps its
     predecessors' orphaned scratch files first — a SIGKILLed capped
     solve never reaches [dispose].  Drivers that point [spill_path]
     somewhere of their own sweep that directory themselves. *)
  (match (max_bytes, spill_path) with
  | Some _, None -> ignore (A.sweep_stale_spills ~dir:(Filename.get_temp_dir_name ()) ())
  | _ -> ());
  let arena = A.create ?page_bits ?max_bytes ?spill_path () in
  let bcap =
    (* Bucket count tracks the arena capacity (load factor <= 1), so
       start at the larger of the hint and one page. *)
    let want = max 1024 (max node_hint arena.A.slots_per_page) in
    let rec up c = if c >= want then c else up (c * 2) in
    up 1024
  in
  let m =
    {
      arena;
      pbits = arena.A.page_bits;
      pmask = arena.A.page_mask;
      mode = gc_mode;
      buckets = Array.make bcap (-1);
      free_head = -1;
      num_slots = 2;
      num_free = 0;
      peak_live = 0;
      nvars;
      cache = Array.make ((1 lsl cache_bits) * 5) (-1);
      cache_mask = (1 lsl cache_bits) - 1;
      cache_h = Array.make n_classes 0;
      cache_m = Array.make n_classes 0;
      map_counter = 0;
      roots = [];
      root_lists = [];
      root_fns = [];
      remap_hooks = [];
      gcs = 0;
      marks = Bytes.create 0;
      stack = Array.make 1024 0;
      visited = [||];
      var_seen = [||];
      stamp = 0;
      allocs = 0;
      budget = None;
      cache_scratch = [||];
      reloc_scratch = [||];
      order_scratch = [||];
    }
  in
  let p0 = A.add_page arena in
  A.set_tail arena p0;
  (* The terminal page carries a permanent extra pin on top of any
     tail pin, so the terminals can never be victims. *)
  arena.A.pins.(0) <- arena.A.pins.(0) + 1;
  (* Terminals: self-looping pseudo-nodes never reached by recursion. *)
  let pg = arena.A.pages.(0) in
  pg.(0) <- terminal_var;
  pg.(1) <- 0;
  pg.(2) <- 0;
  pg.(4) <- terminal_var;
  pg.(5) <- 1;
  pg.(6) <- 1;
  m

let dispose m = A.dispose m.arena

(* Total bytes of node-table storage: every arena page (resident or
   spilled — spilled pages still count against a [Budget] byte limit,
   which bounds the problem size, not the cache size) plus the bucket
   array.  The op cache is excluded: it is bounded by
   [max_cache_entries] regardless of problem size. *)
let table_bytes m = A.total_bytes m.arena + (8 * Array.length m.buckets)

type arena_stats = {
  page_bits : int;
  pages_total : int;
  pages_resident : int;
  pages_pinned : int;
  peak_pages_resident : int;
  evictions : int;
  fault_ins : int;
  spill_reads : int;
  spill_writes : int;
  table_bytes : int;
  resident_bytes : int;
}

let arena_stats m =
  let a = m.arena in
  {
    page_bits = a.A.page_bits;
    pages_total = a.A.num_pages;
    pages_resident = a.A.resident;
    pages_pinned = A.pinned_pages a;
    peak_pages_resident = a.A.peak_resident;
    evictions = a.A.evictions;
    fault_ins = a.A.fault_ins;
    spill_reads = a.A.spill_reads;
    spill_writes = a.A.spill_writes;
    table_bytes = table_bytes m;
    resident_bytes = A.resident_bytes a;
  }

(* Rebuild every bucket chain.  Page-wise so each page is faulted at
   most once; the chains are threaded through [next], so the whole
   arena is rewritten and every touched page goes dirty. *)
let rehash m =
  Array.fill m.buckets 0 (Array.length m.buckets) (-1);
  let mask = Array.length m.buckets - 1 in
  let a = m.arena in
  let spp = a.A.slots_per_page in
  for p = 0 to a.A.num_pages - 1 do
    let base = p * spp in
    let lo = if p = 0 then 2 else 0 in
    let hi = min spp (m.num_slots - base) in
    if hi > lo then begin
      let pg = A.fault_in a p in
      if a.A.capped then begin
        Bytes.set a.A.refbit p '\001';
        Bytes.set a.A.dirty p '\001'
      end;
      for s = lo to hi - 1 do
        let i = s * 4 in
        if pg.(i) >= 0 then begin
          let b = hash3 pg.(i) pg.(i + 1) pg.(i + 2) land mask in
          pg.(i + 3) <- m.buckets.(b);
          m.buckets.(b) <- base + s
        end
      done
    end
  done

(* The op cache tracks the node-table capacity (up to a fixed maximum):
   a direct-mapped cache much smaller than the working set thrashes and
   the hit rate collapses.  Doubling re-inserts the surviving entries at
   their new slots, so the cost is amortized against the table growth
   that triggered it. *)
let max_cache_entries = 1 lsl 18

let grow_cache m =
  let old = m.cache in
  let entries' = (m.cache_mask + 1) * 2 in
  let fresh = Array.make (entries' * 5) (-1) in
  m.cache <- fresh;
  m.cache_mask <- entries' - 1;
  for s = 0 to (Array.length old / 5) - 1 do
    let i = s * 5 in
    let op = old.(i) in
    if op >= 0 then begin
      let a = old.(i + 1) and b = old.(i + 2) and c = old.(i + 3) in
      let j = (hash3 (op + (a * 31)) b c land m.cache_mask) * 5 in
      fresh.(j) <- op;
      fresh.(j + 1) <- a;
      fresh.(j + 2) <- b;
      fresh.(j + 3) <- c;
      fresh.(j + 4) <- old.(i + 4)
    end
  done

(* Growing is appending one page; the bucket array (and with it the op
   cache) only doubles when the capacity outruns it, so existing chains
   are left untouched on the common page-append path. *)
let grow m =
  let p = A.add_page m.arena in
  A.set_tail m.arena p;
  let cap = A.capacity m.arena in
  if cap > Array.length m.buckets then begin
    let nb = ref (Array.length m.buckets) in
    while !nb < cap do
      nb := !nb * 2
    done;
    m.buckets <- Array.make !nb (-1);
    rehash m;
    if m.cache_mask + 1 < !nb && m.cache_mask + 1 < max_cache_entries then grow_cache m
  end

let budget_check m =
  match m.budget with
  | None -> ()
  | Some b -> (
    match Budget.check_nodes b ~bytes:(table_bytes m) ~live:(live_nodes m) ~allocs:m.allocs () with
    | Some reason -> raise (Limit_exceeded reason)
    | None -> ())

let mk m v l h =
  if l = h then l
  else begin
    let mask = Array.length m.buckets - 1 in
    let b = hash3 v l h land mask in
    let rec find n =
      if n = -1 then -1
      else begin
        let pg = node_page m n in
        let i = (n land m.pmask) * 4 in
        if pg.(i) = v && pg.(i + 1) = l && pg.(i + 2) = h then n else find pg.(i + 3)
      end
    in
    let found = find m.buckets.(b) in
    if found >= 0 then found
    else begin
      m.allocs <- m.allocs + 1;
      if m.allocs land (budget_check_interval - 1) = 0 then budget_check m;
      let slot =
        if m.free_head >= 0 then begin
          let s = m.free_head in
          m.free_head <- nnext m s;
          m.num_free <- m.num_free - 1;
          s
        end
        else begin
          if m.num_slots >= A.capacity m.arena then grow m;
          let s = m.num_slots in
          m.num_slots <- m.num_slots + 1;
          s
        end
      in
      (* All writes happen against one fresh page fetch with nothing
         that can fault in between (the bucket array is flat). *)
      let pg = wr_page m slot in
      let i = (slot land m.pmask) * 4 in
      pg.(i) <- v;
      pg.(i + 1) <- l;
      pg.(i + 2) <- h;
      (* Recompute the bucket: [grow] may have changed the mask. *)
      let b = hash3 v l h land (Array.length m.buckets - 1) in
      pg.(i + 3) <- m.buckets.(b);
      m.buckets.(b) <- slot;
      let live = live_nodes m in
      if live > m.peak_live then m.peak_live <- live;
      slot
    end
  end

let ithvar m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.ithvar";
  mk m i bdd_false bdd_true

let nithvar m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.nithvar";
  mk m i bdd_true bdd_false

(* Operation codes for the shared cache. *)
let op_and = 1
let op_or = 2
let op_xor = 3
let op_diff = 4
let op_imp = 5
let op_biimp = 6
let op_not = 7
let op_ite = 8
let op_exist = 9
let op_relprod = 10
let op_replace = 11

let cache_lookup m cls op a b c =
  let slot = hash3 (op + (a * 31)) b c land m.cache_mask in
  let i = slot * 5 in
  let cache = m.cache in
  if cache.(i) = op && cache.(i + 1) = a && cache.(i + 2) = b && cache.(i + 3) = c then begin
    m.cache_h.(cls) <- m.cache_h.(cls) + 1;
    cache.(i + 4)
  end
  else begin
    m.cache_m.(cls) <- m.cache_m.(cls) + 1;
    -1
  end

let cache_store m op a b c r =
  let slot = hash3 (op + (a * 31)) b c land m.cache_mask in
  let i = slot * 5 in
  let cache = m.cache in
  cache.(i) <- op;
  cache.(i + 1) <- a;
  cache.(i + 2) <- b;
  cache.(i + 3) <- c;
  cache.(i + 4) <- r

let rec mk_not m f =
  if f = bdd_false then bdd_true
  else if f = bdd_true then bdd_false
  else begin
    let cached = cache_lookup m cl_not op_not f 0 0 in
    if cached >= 0 then cached
    else begin
      let pf = node_page m f in
      let fi = (f land m.pmask) * 4 in
      let r = mk m pf.(fi) (mk_not m pf.(fi + 1)) (mk_not m pf.(fi + 2)) in
      cache_store m op_not f 0 0 r;
      r
    end
  end

(* Specialized kernels for the hot connectives: terminal rules inlined,
   no per-node op dispatch.  Once both operands are non-terminal the
   var field can be read directly (terminal slots hold [terminal_var],
   so the comparisons still order levels correctly).  Each node's page
   is fetched once; the fetched array stays coherent across the
   recursive calls because live node fields are immutable and eviction
   never mutates a detached page. *)
let rec and_rec m f g =
  if f = g || g = bdd_true then f
  else if f = bdd_true then g
  else if f = bdd_false || g = bdd_false then bdd_false
  else begin
    (* Canonicalize the commutative operands for better cache hits. *)
    let f, g = if f > g then (g, f) else (f, g) in
    let cached = cache_lookup m cl_and op_and f g 0 in
    if cached >= 0 then cached
    else begin
      let pf = node_page m f and pg = node_page m g in
      let fi = (f land m.pmask) * 4 and gi = (g land m.pmask) * 4 in
      let vf = pf.(fi) and vg = pg.(gi) in
      let r =
        if vf = vg then mk m vf (and_rec m pf.(fi + 1) pg.(gi + 1)) (and_rec m pf.(fi + 2) pg.(gi + 2))
        else if vf < vg then mk m vf (and_rec m pf.(fi + 1) g) (and_rec m pf.(fi + 2) g)
        else mk m vg (and_rec m f pg.(gi + 1)) (and_rec m f pg.(gi + 2))
      in
      cache_store m op_and f g 0 r;
      r
    end
  end

and or_rec m f g =
  if f = g || g = bdd_false then f
  else if f = bdd_false then g
  else if f = bdd_true || g = bdd_true then bdd_true
  else begin
    let f, g = if f > g then (g, f) else (f, g) in
    let cached = cache_lookup m cl_or op_or f g 0 in
    if cached >= 0 then cached
    else begin
      let pf = node_page m f and pg = node_page m g in
      let fi = (f land m.pmask) * 4 and gi = (g land m.pmask) * 4 in
      let vf = pf.(fi) and vg = pg.(gi) in
      let r =
        if vf = vg then mk m vf (or_rec m pf.(fi + 1) pg.(gi + 1)) (or_rec m pf.(fi + 2) pg.(gi + 2))
        else if vf < vg then mk m vf (or_rec m pf.(fi + 1) g) (or_rec m pf.(fi + 2) g)
        else mk m vg (or_rec m f pg.(gi + 1)) (or_rec m f pg.(gi + 2))
      in
      cache_store m op_or f g 0 r;
      r
    end
  end

and diff_rec m f g =
  (* f AND NOT g; not commutative, so no operand canonicalization. *)
  if f = bdd_false || g = bdd_true || f = g then bdd_false
  else if g = bdd_false then f
  else if f = bdd_true then mk_not m g
  else begin
    let cached = cache_lookup m cl_diff op_diff f g 0 in
    if cached >= 0 then cached
    else begin
      let pf = node_page m f and pg = node_page m g in
      let fi = (f land m.pmask) * 4 and gi = (g land m.pmask) * 4 in
      let vf = pf.(fi) and vg = pg.(gi) in
      let r =
        if vf = vg then mk m vf (diff_rec m pf.(fi + 1) pg.(gi + 1)) (diff_rec m pf.(fi + 2) pg.(gi + 2))
        else if vf < vg then mk m vf (diff_rec m pf.(fi + 1) g) (diff_rec m pf.(fi + 2) g)
        else mk m vg (diff_rec m f pg.(gi + 1)) (diff_rec m f pg.(gi + 2))
      in
      cache_store m op_diff f g 0 r;
      r
    end
  end

(* Terminal rules for the remaining binary connectives; returns -1 when
   no rule applies and the recursion must proceed. *)
let apply_terminal m op f g =
  if op = op_xor then
    if f = g then bdd_false
    else if f = bdd_false then g
    else if g = bdd_false then f
    else if f = bdd_true then mk_not m g
    else if g = bdd_true then mk_not m f
    else -1
  else if op = op_imp then
    if f = bdd_false || g = bdd_true then bdd_true
    else if f = g then bdd_true
    else if f = bdd_true then g
    else if g = bdd_false then mk_not m f
    else -1
  else if op = op_biimp then
    if f = g then bdd_true
    else if f = bdd_true then g
    else if g = bdd_true then f
    else if f = bdd_false then mk_not m g
    else if g = bdd_false then mk_not m f
    else -1
  else invalid_arg "Bdd.apply_terminal: bad op"

let commutative op = op = op_xor || op = op_biimp

let rec apply m op f g =
  let t = apply_terminal m op f g in
  if t >= 0 then t
  else begin
    let f, g = if commutative op && f > g then (g, f) else (f, g) in
    let cached = cache_lookup m cl_apply_other op f g 0 in
    if cached >= 0 then cached
    else begin
      let vf = level m f and vg = level m g in
      let v = if vf < vg then vf else vg in
      let f0, f1 = if vf = v then (nlow m f, nhigh m f) else (f, f) in
      let g0, g1 = if vg = v then (nlow m g, nhigh m g) else (g, g) in
      let r = mk m v (apply m op f0 g0) (apply m op f1 g1) in
      cache_store m op f g 0 r;
      r
    end
  end

let mk_and m f g = and_rec m f g
let mk_or m f g = or_rec m f g
let mk_diff m f g = diff_rec m f g
let mk_xor m f g = apply m op_xor f g
let mk_imp m f g = apply m op_imp f g
let mk_biimp m f g = apply m op_biimp f g

let rec mk_ite m f g h =
  if f = bdd_true then g
  else if f = bdd_false then h
  else if g = h then g
  else if g = bdd_true && h = bdd_false then f
  else if g = bdd_false && h = bdd_true then mk_not m f
  else begin
    let cached = cache_lookup m cl_ite op_ite f g h in
    if cached >= 0 then cached
    else begin
      let vf = level m f and vg = level m g and vh = level m h in
      let v = min vf (min vg vh) in
      let f0, f1 = if vf = v then (nlow m f, nhigh m f) else (f, f) in
      let g0, g1 = if vg = v then (nlow m g, nhigh m g) else (g, g) in
      let h0, h1 = if vh = v then (nlow m h, nhigh m h) else (h, h) in
      let r = mk m v (mk_ite m f0 g0 h0) (mk_ite m f1 g1 h1) in
      cache_store m op_ite f g h r;
      r
    end
  end

let cube_of_vars m vs =
  let sorted = List.sort_uniq compare vs in
  List.fold_right (fun v acc -> mk m v bdd_false acc) sorted bdd_true

(* Drop leading cube variables above (i.e. at smaller levels than) [v];
   they cannot occur in the function being quantified below [v]. *)
let rec skip_cube m cube v =
  if is_const cube then cube
  else begin
    let pc = node_page m cube in
    let ci = (cube land m.pmask) * 4 in
    if pc.(ci) < v then skip_cube m pc.(ci + 2) v else cube
  end

let rec exist_rec m cube f =
  if is_const f then f
  else begin
    let cube = skip_cube m cube (nvar m f) in
    if cube = bdd_true then f
    else begin
      let cached = cache_lookup m cl_exist op_exist f cube 0 in
      if cached >= 0 then cached
      else begin
        let pf = node_page m f in
        let fi = (f land m.pmask) * 4 in
        let v = pf.(fi) in
        let r =
          if nvar m cube = v then begin
            (* Once one branch saturates, the disjunction is decided:
               skip the other branch entirely. *)
            let cube' = nhigh m cube in
            let r0 = exist_rec m cube' pf.(fi + 1) in
            if r0 = bdd_true then bdd_true else or_rec m r0 (exist_rec m cube' pf.(fi + 2))
          end
          else mk m v (exist_rec m cube pf.(fi + 1)) (exist_rec m cube pf.(fi + 2))
        in
        cache_store m op_exist f cube 0 r;
        r
      end
    end
  end

let exist m ~cube f = exist_rec m cube f
let forall m ~cube f = mk_not m (exist_rec m cube (mk_not m f))

let rec relprod_rec m cube f g =
  if f = bdd_false || g = bdd_false then bdd_false
  else if f = g || g = bdd_true then exist_rec m cube f
  else if f = bdd_true then exist_rec m cube g
  else begin
    (* Both operands are internal nodes from here on. *)
    let vf = nvar m f and vg = nvar m g in
    let v = if vf < vg then vf else vg in
    let cube = skip_cube m cube v in
    if cube = bdd_true then and_rec m f g
    else begin
      let f, g, vf, vg = if f > g then (g, f, vg, vf) else (f, g, vf, vg) in
      let cached = cache_lookup m cl_relprod op_relprod f g cube in
      if cached >= 0 then cached
      else begin
        let pf = node_page m f and pg = node_page m g in
        let fi = (f land m.pmask) * 4 and gi = (g land m.pmask) * 4 in
        let f0, f1 = if vf = v then (pf.(fi + 1), pf.(fi + 2)) else (f, f) in
        let g0, g1 = if vg = v then (pg.(gi + 1), pg.(gi + 2)) else (g, g) in
        let r =
          if nvar m cube = v then begin
            let cube' = nhigh m cube in
            let r0 = relprod_rec m cube' f0 g0 in
            if r0 = bdd_true then bdd_true else or_rec m r0 (relprod_rec m cube' f1 g1)
          end
          else mk m v (relprod_rec m cube f0 g0) (relprod_rec m cube f1 g1)
        in
        cache_store m op_relprod f g cube r;
        r
      end
    end
  end

let relprod m ~cube f g = relprod_rec m cube f g

let make_map m pairs =
  let map = Array.init m.nvars (fun i -> i) in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= m.nvars || b < 0 || b >= m.nvars then invalid_arg "Bdd.make_map: variable out of range";
      map.(a) <- b)
    pairs;
  (* Order preservation: a non-decreasing map is strictly increasing on
     any variable set it is injective on, and [replace] requires
     injectivity on the support — so such maps can be rebuilt with
     plain [mk] instead of [mk_ite].  (Beyond the array the map is the
     identity; entries are < nvars, so the boundary is monotone too.) *)
  let monotone = ref true in
  let identity = ref true in
  Array.iteri
    (fun i b ->
      if b <> i then identity := false;
      if i > 0 && map.(i - 1) > b then monotone := false)
    map;
  m.map_counter <- m.map_counter + 1;
  { map_id = m.map_counter; map; monotone = !monotone; identity = !identity }

let map_is_monotone vm = vm.monotone

(* Order-preserving fast path: the renamed variable is in the same
   relative position, so the children can be rebuilt with a direct
   [mk] — no exponential ite reconstruction. *)
let rec replace_mono m vm f =
  if is_const f then f
  else begin
    let cached = cache_lookup m cl_replace op_replace f vm.map_id 0 in
    if cached >= 0 then cached
    else begin
      let pf = node_page m f in
      let fi = (f land m.pmask) * 4 in
      let v = pf.(fi) in
      let v' = if v < Array.length vm.map then vm.map.(v) else v in
      let l = replace_mono m vm pf.(fi + 1) in
      let h = replace_mono m vm pf.(fi + 2) in
      let r = mk m v' l h in
      cache_store m op_replace f vm.map_id 0 r;
      r
    end
  end

let rec replace_gen m vm f =
  if is_const f then f
  else begin
    let cached = cache_lookup m cl_replace op_replace f vm.map_id 0 in
    if cached >= 0 then cached
    else begin
      let pf = node_page m f in
      let fi = (f land m.pmask) * 4 in
      let v = pf.(fi) in
      let v' = if v < Array.length vm.map then vm.map.(v) else v in
      let l = replace_gen m vm pf.(fi + 1) in
      let h = replace_gen m vm pf.(fi + 2) in
      (* [mk_ite] rather than [mk]: correct even when the renaming does
         not preserve the variable order. *)
      let r = mk_ite m (ithvar m v') h l in
      cache_store m op_replace f vm.map_id 0 r;
      r
    end
  end

let replace m vm f = if vm.identity then f else if vm.monotone then replace_mono m vm f else replace_gen m vm f

(* --- Traversals (explicit stack + reusable visit stamps) --- *)

let stack_push m top n =
  if top = Array.length m.stack then m.stack <- Array.append m.stack (Array.make (Array.length m.stack) 0);
  m.stack.(top) <- n;
  top + 1

let fresh_stamp m =
  (* (Re)size the stamp arrays; a fresh array is all zeros, which no
     stamp ever equals because stamps start at 1. *)
  if Array.length m.visited < m.num_slots then m.visited <- Array.make (A.capacity m.arena) 0;
  if Array.length m.var_seen < m.nvars then m.var_seen <- Array.make (max m.nvars 16) 0;
  m.stamp <- m.stamp + 1;
  m.stamp

let support m f =
  if is_const f then []
  else begin
    let stamp = fresh_stamp m in
    let vars = ref [] in
    let top = ref 0 in
    let visit n =
      if not (is_const n) && m.visited.(n) <> stamp then begin
        m.visited.(n) <- stamp;
        top := stack_push m !top n
      end
    in
    visit f;
    while !top > 0 do
      decr top;
      let n = m.stack.(!top) in
      let pg = node_page m n in
      let i = (n land m.pmask) * 4 in
      let v = pg.(i) in
      if m.var_seen.(v) <> stamp then begin
        m.var_seen.(v) <- stamp;
        vars := v :: !vars
      end;
      visit pg.(i + 1);
      visit pg.(i + 2)
    done;
    List.sort compare !vars
  end

let node_count m f =
  if is_const f then 0
  else begin
    let stamp = fresh_stamp m in
    let count = ref 0 in
    let top = ref 0 in
    let visit n =
      if not (is_const n) && m.visited.(n) <> stamp then begin
        m.visited.(n) <- stamp;
        incr count;
        top := stack_push m !top n
      end
    in
    visit f;
    while !top > 0 do
      decr top;
      let n = m.stack.(!top) in
      let pg = node_page m n in
      let i = (n land m.pmask) * 4 in
      visit pg.(i + 1);
      visit pg.(i + 2)
    done;
    !count
  end

(* Generic satcount parameterized by a small semiring. *)
let satcount_gen m ~vars f ~zero ~two_pow ~add ~scale =
  let len = Array.length vars in
  let pos = Hashtbl.create len in
  Array.iteri (fun i v -> Hashtbl.add pos v i) vars;
  let memo = Hashtbl.create 64 in
  (* [count n i] = assignments of vars.(i..) satisfying n, where n's top
     variable has position >= i. *)
  let rec count n i =
    if n = bdd_false then zero
    else if n = bdd_true then two_pow (len - i)
    else begin
      let j =
        match Hashtbl.find_opt pos (nvar m n) with
        | Some j -> j
        | None -> invalid_arg "Bdd.satcount: support not included in vars"
      in
      let c =
        match Hashtbl.find_opt memo n with
        | Some c -> c
        | None ->
          let c = add (count (nlow m n) (j + 1)) (count (nhigh m n) (j + 1)) in
          Hashtbl.add memo n c;
          c
      in
      scale c (j - i)
    end
  in
  count f 0

let satcount m ~vars f =
  satcount_gen m ~vars f ~zero:0.0 ~two_pow:(fun k -> Float.pow 2.0 (float_of_int k)) ~add:( +. )
    ~scale:(fun c k -> c *. Float.pow 2.0 (float_of_int k))

let satcount_big m ~vars f =
  satcount_gen m ~vars f ~zero:Bignat.zero ~two_pow:Bignat.pow2 ~add:Bignat.add ~scale:(fun c k -> Bignat.shift_left c k)

let iter_sat m ~vars yield f =
  let len = Array.length vars in
  let assignment = Array.make len false in
  let rec go i n =
    if n <> bdd_false then
      if i = len then begin
        if n = bdd_true then yield assignment
        else invalid_arg "Bdd.iter_sat: support not included in vars"
      end
      else begin
        let vn = level m n in
        if vn = vars.(i) then begin
          assignment.(i) <- false;
          go (i + 1) (nlow m n);
          assignment.(i) <- true;
          go (i + 1) (nhigh m n)
        end
        else if vn > vars.(i) then begin
          (* n does not depend on vars.(i): both values satisfy. *)
          assignment.(i) <- false;
          go (i + 1) n;
          assignment.(i) <- true;
          go (i + 1) n
        end
        else invalid_arg "Bdd.iter_sat: vars must be sorted and include the support"
      end
  in
  go 0 f

(* --- Arithmetic primitives (LSB-first bit blocks) --- *)

let const_value m ~bits value =
  let w = Array.length bits in
  if w < Sys.int_size - 1 && value lsr w <> 0 then invalid_arg "Bdd.const_value: value too wide";
  let acc = ref bdd_true in
  for i = w - 1 downto 0 do
    let lit = if (value lsr i) land 1 = 1 then ithvar m bits.(i) else nithvar m bits.(i) in
    acc := mk_and m lit !acc
  done;
  !acc

let range m ~bits ~lo ~hi =
  if lo > hi then bdd_false
  else begin
    let w = Array.length bits in
    (* x <= hi, built LSB to MSB. *)
    let le = ref bdd_true in
    for i = 0 to w - 1 do
      let x = ithvar m bits.(i) in
      le := if (hi lsr i) land 1 = 1 then mk_ite m x !le bdd_true else mk_ite m x bdd_false !le
    done;
    (* x >= lo. *)
    let ge = ref bdd_true in
    for i = 0 to w - 1 do
      let x = ithvar m bits.(i) in
      ge := if (lo lsr i) land 1 = 1 then mk_ite m x !ge bdd_false else mk_ite m x bdd_true !ge
    done;
    mk_and m !le !ge
  end

let add_const m ~src ~dst ~delta =
  if Array.length src <> Array.length dst then invalid_arg "Bdd.add_const: width mismatch";
  if delta < 0 then invalid_arg "Bdd.add_const: negative delta";
  let w = Array.length src in
  let acc = ref bdd_true in
  let carry = ref bdd_false in
  for i = 0 to w - 1 do
    let s = ithvar m src.(i) and d = ithvar m dst.(i) in
    let di = (delta lsr i) land 1 = 1 in
    (* sum bit = s xor delta_i xor carry *)
    let s_xor_c = mk_xor m s !carry in
    let sum = if di then mk_not m s_xor_c else s_xor_c in
    acc := mk_and m !acc (mk_biimp m d sum);
    (* carry' = delta_i ? (s or carry) : (s and carry) *)
    carry := if di then mk_or m s !carry else mk_and m s !carry
  done;
  (* Exclude overflowing assignments: the final carry must be 0, and the
     part of delta beyond the width must be 0. *)
  if w < Sys.int_size - 1 && delta lsr w <> 0 then bdd_false else mk_and m !acc (mk_not m !carry)

let equal_blocks m ~src ~dst =
  if Array.length src <> Array.length dst then invalid_arg "Bdd.equal_blocks: width mismatch";
  let acc = ref bdd_true in
  for i = Array.length src - 1 downto 0 do
    acc := mk_and m (mk_biimp m (ithvar m src.(i)) (ithvar m dst.(i))) !acc
  done;
  !acc

let to_dot ?(var_name = fun i -> Printf.sprintf "x%d" i) m f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph bdd {\n";
  Buffer.add_string buf "  node0 [shape=box, label=\"0\"];\n";
  Buffer.add_string buf "  node1 [shape=box, label=\"1\"];\n";
  let seen = Hashtbl.create 64 in
  let rec go n =
    if not (is_const n) && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      Buffer.add_string buf (Printf.sprintf "  node%d [label=%S];\n" n (var_name (nvar m n)));
      Buffer.add_string buf (Printf.sprintf "  node%d -> node%d [style=dashed];\n" n (nlow m n));
      Buffer.add_string buf (Printf.sprintf "  node%d -> node%d;\n" n (nhigh m n));
      go (nlow m n);
      go (nhigh m n)
    end
  in
  go f;
  (match f with
  | 0 | 1 -> ()
  | root -> Buffer.add_string buf (Printf.sprintf "  root [shape=none, label=\"\"];\n  root -> node%d;\n" root));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* --- Serialization (shared-DAG binary dump) ---

   BuDDy bdd_save-style format, extended to many roots so a whole
   store of relations persists as ONE reduced DAG — identical
   sub-functions across relations are written once (shared-structure
   persistence).  Layout, all integers unsigned 32-bit little-endian:

     bytes 0-7    magic "WLBDD02\n"
     bytes 8-19   nvars, node count N, root count R
     then N       (var, lo, hi) triples in topological (children-first)
                  order; node j has id j+2, ids 0/1 are the terminals,
                  and lo/hi must reference ids < j+2
     then R       root ids
     last 4       CRC-32 of every preceding byte (checksummed framing)

   The dump ids are assigned by a deterministic children-first walk of
   the roots, so two managers holding the same functions — regardless
   of their handle numbering, GC mode or arena geometry — serialize to
   the same bytes: dumps double as canonical fingerprints for
   bit-identity checks across capped/uncapped runs.

   Loading verifies the trailing checksum FIRST, so any bit rot or
   truncation is reported as a checksum/size mismatch up front instead
   of surfacing as a confusing structural error (or worse, decoding to
   a wrong BDD); it then rebuilds through [mk], so hash consing
   re-establishes canonicity in the target manager regardless of its
   current table size, free-list state or GC history.  Structural
   validation still rejects malformed-but-checksummed input
   ([Solver_error.Bad_input] carrying the byte offset) before any node
   is interned from a bad triple. *)

let magic = "WLBDD02\n"
let header_bytes = String.length magic + 12
let trailer_bytes = 4 (* CRC-32 *)

let serialize m roots =
  let buf = Buffer.create 4096 in
  let tri = Buffer.create 4096 in
  let ids = Hashtbl.create 1024 in
  Hashtbl.add ids bdd_false 0;
  Hashtbl.add ids bdd_true 1;
  let next = ref 2 in
  let stack = ref [] in
  let emit n =
    Hashtbl.add ids n !next;
    incr next;
    Buffer.add_int32_le tri (Int32.of_int (nvar m n));
    Buffer.add_int32_le tri (Int32.of_int (Hashtbl.find ids (nlow m n)));
    Buffer.add_int32_le tri (Int32.of_int (Hashtbl.find ids (nhigh m n)))
  in
  let visit root =
    if not (Hashtbl.mem ids root) then begin
      stack := [ root ];
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | n :: rest ->
          if Hashtbl.mem ids n then stack := rest
          else begin
            let l = nlow m n and h = nhigh m n in
            let lk = Hashtbl.mem ids l and hk = Hashtbl.mem ids h in
            if lk && hk then begin
              stack := rest;
              emit n
            end
            else begin
              if not hk then stack := h :: !stack;
              if not lk then stack := l :: !stack
            end
          end
      done
    end
  in
  List.iter visit roots;
  Buffer.add_string buf magic;
  Buffer.add_int32_le buf (Int32.of_int m.nvars);
  Buffer.add_int32_le buf (Int32.of_int (!next - 2));
  Buffer.add_int32_le buf (Int32.of_int (List.length roots));
  Buffer.add_buffer buf tri;
  List.iter (fun r -> Buffer.add_int32_le buf (Int32.of_int (Hashtbl.find ids r))) roots;
  let body = Buffer.contents buf in
  Buffer.add_int32_le buf (Int32.of_int (Crc32.string body));
  Buffer.contents buf

(* Cross-manager transfer without the byte-string detour: re-intern the
   reachable DAG into [dst], memoised per source node.  Recursion depth
   is bounded by the variable count (vars strictly increase downward). *)
let copy src dst roots =
  extend_vars dst src.nvars;
  let memo = Hashtbl.create 1024 in
  Hashtbl.add memo bdd_false bdd_false;
  Hashtbl.add memo bdd_true bdd_true;
  let rec go n =
    match Hashtbl.find_opt memo n with
    | Some r -> r
    | None ->
      let l = go (nlow src n) and h = go (nhigh src n) in
      let r = mk dst (nvar src n) l h in
      Hashtbl.add memo n r;
      r
  in
  List.map go roots

let deserialize ?(source = "<bdd>") m data =
  let fail off fmt = Solver_error.raise_bad_input ~file:source ~line:0 ("byte %d: " ^^ fmt) off in
  let len = String.length data in
  let u32 off =
    if off + 4 > len then fail off "truncated (need 4 bytes, have %d)" (len - off);
    let v = Int32.to_int (String.get_int32_le data off) in
    if v < 0 then fail off "negative field %d" v;
    v
  in
  if len < header_bytes + trailer_bytes then fail 0 "truncated header (%d bytes)" len;
  if String.sub data 0 (String.length magic) <> magic then fail 0 "bad magic (not a %s dump)" (String.trim magic);
  let base = String.length magic in
  let nvars = u32 base in
  let nnodes = u32 (base + 4) in
  let nroots = u32 (base + 8) in
  let expect = header_bytes + (12 * nnodes) + (4 * nroots) + trailer_bytes in
  if len <> expect then fail len "size mismatch: %d nodes + %d roots need %d bytes, file has %d" nnodes nroots expect len;
  (* Verify the trailing CRC before trusting a single triple: bit rot
     anywhere in the dump is one uniform, early error. *)
  let stored_crc = Int32.to_int (String.get_int32_le data (len - trailer_bytes)) land 0xFFFFFFFF in
  let actual_crc = Crc32.update 0 data ~pos:0 ~len:(len - trailer_bytes) in
  if stored_crc <> actual_crc then
    fail (len - trailer_bytes) "checksum mismatch: dump says crc32 %s, content is %s (corrupt or torn write)"
      (Crc32.to_hex stored_crc) (Crc32.to_hex actual_crc);
  if nvars > m.nvars then extend_vars m nvars;
  let handles = Array.make (nnodes + 2) bdd_false in
  handles.(1) <- bdd_true;
  for j = 0 to nnodes - 1 do
    let off = header_bytes + (12 * j) in
    let v = u32 off and l = u32 (off + 4) and h = u32 (off + 8) in
    if v >= nvars then fail off "variable %d out of range [0, %d)" v nvars;
    if l >= j + 2 then fail (off + 4) "low edge %d is not topologically earlier than node %d" l (j + 2);
    if h >= j + 2 then fail (off + 8) "high edge %d is not topologically earlier than node %d" h (j + 2);
    if l = h then fail off "node %d is not reduced (low = high = %d)" (j + 2) l;
    (* Children are strictly below their parent in the variable order in
       any well-formed dump; [mk] does not re-check, so verify here. *)
    let lvl x = if x < 2 then terminal_var else nvar m handles.(x) in
    if lvl l <= v || lvl h <= v then fail off "node %d breaks the variable order" (j + 2);
    handles.(j + 2) <- mk m v handles.(l) handles.(h)
  done;
  List.init nroots (fun i ->
      let off = header_bytes + (12 * nnodes) + (4 * i) in
      let r = u32 off in
      if r >= nnodes + 2 then fail off "root id %d out of range [0, %d)" r (nnodes + 2);
      handles.(r))

(* --- Garbage collection --- *)

let add_root m r = m.roots <- r :: m.roots
let remove_root m r = m.roots <- List.filter (fun r' -> r' != r) m.roots
let add_root_list m l = m.root_lists <- l :: m.root_lists
let remove_root_list m l = m.root_lists <- List.filter (fun l' -> l' != l) m.root_lists
let add_root_fn m f = m.root_fns <- f :: m.root_fns
let on_remap m h = m.remap_hooks <- h :: m.remap_hooks

(* Mark every node reachable from the registered roots into [m.marks].
   Shared by both GC modes. *)
let mark_roots m =
  if Bytes.length m.marks < m.num_slots then m.marks <- Bytes.make (A.capacity m.arena) '\000'
  else Bytes.fill m.marks 0 m.num_slots '\000';
  let top = ref 0 in
  let push n =
    if n >= 2 && Bytes.get m.marks n = '\000' then begin
      Bytes.set m.marks n '\001';
      top := stack_push m !top n
    end
  in
  let mark n =
    push n;
    while !top > 0 do
      decr top;
      let x = m.stack.(!top) in
      let pg = node_page m x in
      let i = (x land m.pmask) * 4 in
      push pg.(i + 1);
      push pg.(i + 2)
    done
  in
  List.iter (fun r -> mark !r) m.roots;
  List.iter (fun l -> List.iter mark !l) m.root_lists;
  List.iter (fun f -> List.iter mark (f ())) m.root_fns

(* Invalidate cache entries whose operands or result died this
   collection: their handles may be reused by a later [mk], after which
   the entry would describe a different function.  Entries over live
   handles stay valid because hash consing makes a live handle denote
   the same function forever.  Operand slots holding non-handle keys
   ([op_replace]'s map id) are skipped — varmaps are immutable and map
   ids are never reused. *)
let sweep_cache m =
  let live x = x < 2 || Bytes.get m.marks x = '\001' in
  let cache = m.cache in
  let n = Array.length cache / 5 in
  for slot = 0 to n - 1 do
    let i = slot * 5 in
    let op = cache.(i) in
    if op >= 0 then begin
      let ok =
        live cache.(i + 4)
        && live cache.(i + 1)
        && (op = op_replace || (live cache.(i + 2) && live cache.(i + 3)))
      in
      if not ok then cache.(i) <- -1
    end
  done

(* Non-moving collection: dead slots go on the free list, every
   surviving handle keeps its number.  This is the only mode safe for
   clients that squirrel raw handles away without registering a
   remapping path. *)
let gc_sweep m =
  mark_roots m;
  sweep_cache m;
  let a = m.arena in
  let spp = a.A.slots_per_page in
  (* Sweep: free unmarked live slots (page-wise: one fault per page). *)
  for p = 0 to a.A.num_pages - 1 do
    let base = p * spp in
    let lo = if p = 0 then 2 else 0 in
    let hi = min spp (m.num_slots - base) in
    if hi > lo then begin
      let pg = A.fault_in a p in
      if a.A.capped then begin
        Bytes.set a.A.refbit p '\001';
        Bytes.set a.A.dirty p '\001'
      end;
      for s = lo to hi - 1 do
        if pg.(s * 4) >= 0 && Bytes.get m.marks (base + s) = '\000' then pg.(s * 4) <- -1
      done
    end
  done;
  rehash m;
  (* Rehashing only threads live nodes; thread the free slots now, high
     pages first so the list pops low slots first. *)
  m.free_head <- -1;
  m.num_free <- 0;
  for p = a.A.num_pages - 1 downto 0 do
    let base = p * spp in
    let lo = if p = 0 then 2 else 0 in
    let hi = min spp (m.num_slots - base) in
    if hi > lo then begin
      let pg = A.fault_in a p in
      if a.A.capped then begin
        Bytes.set a.A.refbit p '\001';
        Bytes.set a.A.dirty p '\001'
      end;
      for s = hi - 1 downto lo do
        if pg.(s * 4) = -1 then begin
          pg.((s * 4) + 3) <- m.free_head;
          m.free_head <- base + s;
          m.num_free <- m.num_free + 1
        end
      done
    end
  done;
  m.gcs <- m.gcs + 1

(* Rebuild the op cache through the relocation map so warm entries
   survive compaction: an entry is kept when its result and operands
   are all live, with handles rewritten to their new numbers and the
   entry re-inserted at the slot the rewritten key hashes to
   (collisions are last-write-wins, same as normal stores).
   [op_replace]'s b slot is a map id, never a handle: it is neither
   liveness-checked nor rewritten. *)
let rebuild_cache_remapped m reloc =
  let live x = x < 2 || Bytes.get m.marks x = '\001' in
  let remap x = if x < 2 then x else reloc.(x) in
  let cache = m.cache in
  let fresh =
    if Array.length m.cache_scratch = Array.length cache then begin
      Array.fill m.cache_scratch 0 (Array.length cache) (-1);
      m.cache_scratch
    end
    else Array.make (Array.length cache) (-1)
  in
  let n = Array.length cache / 5 in
  for slot = 0 to n - 1 do
    let i = slot * 5 in
    let op = cache.(i) in
    if op >= 0 then begin
      let a = cache.(i + 1) and b = cache.(i + 2) and c = cache.(i + 3) and r = cache.(i + 4) in
      if live r && live a && (op = op_replace || (live b && live c)) then begin
        let a' = remap a and r' = remap r in
        let b' = if op = op_replace then b else remap b in
        let c' = if op = op_replace then c else remap c in
        let j = (hash3 (op + (a' * 31)) b' c' land m.cache_mask) * 5 in
        fresh.(j) <- op;
        fresh.(j + 1) <- a';
        fresh.(j + 2) <- b';
        fresh.(j + 3) <- c';
        fresh.(j + 4) <- r'
      end
    end
  done;
  m.cache_scratch <- cache;
  m.cache <- fresh

(* Compacting collection: renumber the survivors so that nodes of the
   same variable level sit in consecutive slots — and therefore in the
   same (or adjacent) pages.  The recursive kernels proceed level by
   level, so clustering turns their page access pattern from uniform
   scatter over the whole table into a sweep of a few pages per level:
   that is what makes a byte-capped buffer pool workable, and it is a
   plain locality win uncapped.

   Within a level survivors keep their relative (ascending) old order,
   so repeated compactions of an unchanged working set are stable.

   New numbering: terminals keep 0/1; level 0's survivors follow, then
   level 1's, etc.  [reloc.(old) = new] for every marked slot.  After
   the copy, every registered root ref/list is rewritten in place and
   the [on_remap] hooks run with the relocation function; the free
   list is gone (allocation resumes as pure bump at [num_slots]). *)
let gc_compact m =
  mark_roots m;
  let a = m.arena in
  let spp = a.A.slots_per_page in
  (* Per-level survivor counts. *)
  let counts = Array.make (max m.nvars 1) 0 in
  let nlive = ref 0 in
  for p = 0 to a.A.num_pages - 1 do
    let base = p * spp in
    let lo = if p = 0 then 2 else 0 in
    let hi = min spp (m.num_slots - base) in
    if hi > lo then begin
      let pg = A.fault_in a p in
      for s = lo to hi - 1 do
        if Bytes.get m.marks (base + s) = '\001' then begin
          counts.(pg.(s * 4)) <- counts.(pg.(s * 4)) + 1;
          incr nlive
        end
      done
    end
  done;
  let nlive = !nlive in
  (* Prefix sums: counts.(v) becomes the next destination id for level
     v, destinations starting at 2. *)
  let cursor = ref 2 in
  for v = 0 to Array.length counts - 1 do
    let c = counts.(v) in
    counts.(v) <- !cursor;
    cursor := !cursor + c
  done;
  (* Assign destinations (old-ascending within each level) and record
     the inverse: order.(new - 2) = old. *)
  (* Stale scratch entries are harmless: [reloc] is only ever read at
     marked slots (all freshly written below), [order] only below
     [nlive]. *)
  let reloc =
    if Array.length m.reloc_scratch >= m.num_slots then m.reloc_scratch
    else begin
      let a = Array.make (max 1024 (2 * m.num_slots)) 0 in
      m.reloc_scratch <- a;
      a
    end
  in
  reloc.(1) <- 1;
  let order =
    if Array.length m.order_scratch >= nlive then m.order_scratch
    else begin
      let a = Array.make (max 1024 (2 * nlive)) 0 in
      m.order_scratch <- a;
      a
    end
  in
  for p = 0 to a.A.num_pages - 1 do
    let base = p * spp in
    let lo = if p = 0 then 2 else 0 in
    let hi = min spp (m.num_slots - base) in
    if hi > lo then begin
      let pg = A.fault_in a p in
      for s = lo to hi - 1 do
        if Bytes.get m.marks (base + s) = '\001' then begin
          let v = pg.(s * 4) in
          let d = counts.(v) in
          counts.(v) <- d + 1;
          reloc.(base + s) <- d;
          order.(d - 2) <- base + s
        end
      done
    end
  done;
  (* Remap the op cache while the old numbering is still readable. *)
  rebuild_cache_remapped m reloc;
  (* Emit the survivors into fresh pages in destination order.  The
     fresh pages live outside the pool until [swap] installs them, so
     a capped arena transiently holds both copies; [swap] evicts back
     under the cap immediately after. *)
  let new_slots = nlive + 2 in
  let npages = (new_slots + spp - 1) / spp in
  let fresh = Array.init npages (fun _ -> Array.make a.A.ints_per_page (-1)) in
  fresh.(0).(0) <- terminal_var;
  fresh.(0).(1) <- 0;
  fresh.(0).(2) <- 0;
  fresh.(0).(4) <- terminal_var;
  fresh.(0).(5) <- 1;
  fresh.(0).(6) <- 1;
  for d = 0 to nlive - 1 do
    let old = order.(d) in
    let po = node_page m old in
    let oi = (old land m.pmask) * 4 in
    let l = po.(oi + 1) and h = po.(oi + 2) in
    let dst = d + 2 in
    let pd = fresh.(dst lsr m.pbits) in
    let di = (dst land m.pmask) * 4 in
    pd.(di) <- po.(oi);
    pd.(di + 1) <- (if l < 2 then l else reloc.(l));
    pd.(di + 2) <- (if h < 2 then h else reloc.(h))
  done;
  A.swap a fresh npages;
  A.set_tail a (npages - 1);
  m.num_slots <- new_slots;
  m.free_head <- -1;
  m.num_free <- 0;
  (* Shrink (or grow) the bucket array to the compacted capacity, then
     rebuild the chains over the new numbering. *)
  let cap = A.capacity a in
  let nb =
    let rec up c = if c >= cap || c >= max 1024 cap then c else up (c * 2) in
    up 1024
  in
  if Array.length m.buckets <> nb then m.buckets <- Array.make nb (-1);
  rehash m;
  (* Rewrite every registered retention point to the new numbering. *)
  let mapf x = if x < 2 then x else reloc.(x) in
  List.iter (fun r -> r := mapf !r) m.roots;
  List.iter (fun l -> l := List.map mapf !l) m.root_lists;
  List.iter (fun h -> h mapf) m.remap_hooks;
  m.gcs <- m.gcs + 1

let gc m =
  match m.mode with
  | Sweep -> gc_sweep m
  | Compact -> gc_compact m

(* --- Frozen spaces and per-domain evaluation contexts ---------------

   Multicore warm-query serving: [freeze] snapshots a manager's node
   table into an immutable value that any number of domains may read
   concurrently, and [eval_ctx] gives each domain a private arena for
   the fresh nodes a query allocates.

   The snapshot is the post-GC page set, copied page by page out of
   the buffer pool into plain immutable arrays (spilled pages are
   faulted in to be copied, so a frozen space is always fully
   resident).  Under [Sweep] GC the surviving handles keep their slots,
   so every live handle denotes exactly the same function in the
   frozen space.  Under [Compact] the collection renumbers — but it
   also rewrites every registered root through the remap protocol, so
   handles read back from their rooted homes after [freeze] returns
   are equally valid in the snapshot, and the frozen pages come out
   level-clustered for the same locality win the live manager gets.
   Either way, answers computed against a frozen space are
   bit-identical to the live evaluator's.

   A ctx's fresh nodes occupy the handle range [fz_base, ...): a handle
   below the base reads the frozen pages, at or above it the ctx's own
   (flat, private, never-spilled) arena.  Frozen nodes never point at
   ctx nodes (they existed first), so the ctx constructor consults the
   frozen unique table only when both children are frozen.  The ctx op
   cache is stride-6 with a generation stamp: [ctx_reset] disposes
   every query-local node in O(live ctx nodes) by clearing the local
   unique table and bumping the generation, while cache entries whose
   operands AND result are all frozen stay valid across resets (warm
   repeated queries stay warm).

   No operation on a ctx ever writes to the frozen pages, takes a
   lock, or touches the originating manager — the whole query path is
   wait-free with respect to other domains. *)

type frozen = {
  fz_pages : int array array; (* packed stride-4 pages, handles [0, fz_base) *)
  fz_page_bits : int;
  fz_page_mask : int;
  fz_buckets : int array;
  fz_mask : int;
  fz_base : int; (* ctx handles start here *)
  fz_nvars : int;
  fz_live : int;
}

let freeze m =
  (* Collect first so the snapshot holds only reachable nodes (and,
     under [Compact], is level-clustered and densely numbered). *)
  gc m;
  let a = m.arena in
  let spp = a.A.slots_per_page in
  let npages = (m.num_slots + spp - 1) / spp in
  (* [fault_in] may evict an earlier page to make room, but the copy of
     that page is already taken and eviction never mutates the array. *)
  let pages = Array.init npages (fun p -> Array.copy (A.fault_in a p)) in
  {
    fz_pages = pages;
    fz_page_bits = a.A.page_bits;
    fz_page_mask = a.A.page_mask;
    fz_buckets = Array.copy m.buckets;
    fz_mask = Array.length m.buckets - 1;
    fz_base = m.num_slots;
    fz_nvars = m.nvars;
    fz_live = live_nodes m;
  }

let frozen_nvars fz = fz.fz_nvars
let frozen_live_nodes fz = fz.fz_live

let frozen_bytes fz =
  let pages =
    Array.fold_left (fun acc p -> acc + Array.length p) 0 fz.fz_pages
  in
  (pages + Array.length fz.fz_buckets) * 8

(* Frozen-page field read; the terminals live in page 0 with
   [terminal_var] in the var slot, exactly as in the live arena. *)
let[@inline] fzf fz n k = fz.fz_pages.(n lsr fz.fz_page_bits).(((n land fz.fz_page_mask) * 4) + k)

type ctx = {
  c_fz : frozen;
  mutable c_nodes : int array; (* stride-4 arena; slot s is handle fz_base + s *)
  mutable c_buckets : int array; (* chain heads, handles, -1 = empty *)
  mutable c_mask : int;
  mutable c_num : int; (* ctx-local nodes allocated since the last reset *)
  c_cache : int array; (* stride-6 [op; a; b; c; result; generation] *)
  c_cache_mask : int;
  mutable c_gen : int;
  mutable c_allocs : int; (* total ctx allocations, never reset *)
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_budget : Budget.t option;
}

let eval_ctx ?(node_hint = 1 lsl 12) ?(cache_bits = 14) fz =
  let cap =
    let rec up c = if c >= node_hint then c else up (c * 2) in
    up 1024
  in
  {
    c_fz = fz;
    c_nodes = Array.make (cap * 4) (-1);
    c_buckets = Array.make cap (-1);
    c_mask = cap - 1;
    c_num = 0;
    c_cache = Array.make ((1 lsl cache_bits) * 6) (-1);
    c_cache_mask = (1 lsl cache_bits) - 1;
    c_gen = 0;
    c_allocs = 0;
    c_hits = 0;
    c_misses = 0;
    c_budget = None;
  }

let ctx_frozen c = c.c_fz
let ctx_allocations c = c.c_allocs
let ctx_live_nodes c = c.c_num
let ctx_set_budget c b = c.c_budget <- b
let ctx_cache_stats c = (c.c_hits, c.c_misses)

let ctx_reset c =
  if c.c_num > 0 then begin
    Array.fill c.c_buckets 0 (Array.length c.c_buckets) (-1);
    c.c_num <- 0
  end;
  (* Bumping the generation invalidates every cache entry that touches
     a (now dead) ctx handle; entries over frozen handles only are kept
     by the lookup's cross-generation check. *)
  c.c_gen <- c.c_gen + 1

let ctx_dispose c =
  ctx_reset c;
  (* Drop the arena and unique table so the only remaining retained
     storage is the (shared) frozen space and the fixed-size op cache;
     a follower swapping snapshots can therefore release an old space
     by disposing its ctxs and dropping the [frozen] value — both are
     then ordinary unreachable heap blocks for the GC.  A disposed ctx
     must not be used again: the first fresh allocation through it
     lands in [ctx_grow]'s zero-capacity guard and raises. *)
  c.c_nodes <- [||];
  c.c_buckets <- [| -1 |];
  c.c_mask <- 0;
  c.c_budget <- None

(* Field reads dispatch on the handle range; terminals live in the
   frozen pages (slots 0/1, var = terminal_var), so [cvar] orders
   levels correctly without a terminal test. *)
let[@inline] cvar c n = if n < c.c_fz.fz_base then fzf c.c_fz n 0 else c.c_nodes.((n - c.c_fz.fz_base) * 4)
let[@inline] clow c n = if n < c.c_fz.fz_base then fzf c.c_fz n 1 else c.c_nodes.(((n - c.c_fz.fz_base) * 4) + 1)
let[@inline] chigh c n = if n < c.c_fz.fz_base then fzf c.c_fz n 2 else c.c_nodes.(((n - c.c_fz.fz_base) * 4) + 2)

let ctx_budget_check c =
  match c.c_budget with
  | None -> ()
  | Some b -> (
    match Budget.check_nodes b ~bytes:(8 * Array.length c.c_nodes) ~live:c.c_num ~allocs:c.c_allocs () with
    | Some reason -> raise (Limit_exceeded reason)
    | None -> ())

let ctx_grow c =
  let cap = Array.length c.c_nodes / 4 in
  if cap = 0 then failwith "Bdd: eval_ctx used after ctx_dispose";
  let cap' = cap * 2 in
  c.c_nodes <- Array.append c.c_nodes (Array.make (cap * 4) (-1));
  c.c_buckets <- Array.make cap' (-1);
  c.c_mask <- cap' - 1;
  let base = c.c_fz.fz_base in
  for s = 0 to c.c_num - 1 do
    let b = hash3 c.c_nodes.(s * 4) c.c_nodes.((s * 4) + 1) c.c_nodes.((s * 4) + 2) land c.c_mask in
    c.c_nodes.((s * 4) + 3) <- c.c_buckets.(b);
    c.c_buckets.(b) <- base + s
  done

let cmk_local c v l h =
  let base = c.c_fz.fz_base in
  let b0 = hash3 v l h land c.c_mask in
  let rec find n =
    if n = -1 then -1
    else begin
      let s = (n - base) * 4 in
      if c.c_nodes.(s) = v && c.c_nodes.(s + 1) = l && c.c_nodes.(s + 2) = h then n else find c.c_nodes.(s + 3)
    end
  in
  let found = find c.c_buckets.(b0) in
  if found >= 0 then found
  else begin
    c.c_allocs <- c.c_allocs + 1;
    if c.c_allocs land (budget_check_interval - 1) = 0 then ctx_budget_check c;
    if c.c_num * 4 = Array.length c.c_nodes then ctx_grow c;
    let s = c.c_num in
    c.c_num <- s + 1;
    c.c_nodes.(s * 4) <- v;
    c.c_nodes.((s * 4) + 1) <- l;
    c.c_nodes.((s * 4) + 2) <- h;
    (* Recompute the bucket: [ctx_grow] may have changed the mask. *)
    let b = hash3 v l h land c.c_mask in
    c.c_nodes.((s * 4) + 3) <- c.c_buckets.(b);
    c.c_buckets.(b) <- base + s;
    base + s
  end

let cmk c v l h =
  if l = h then l
  else begin
    let base = c.c_fz.fz_base in
    if l < base && h < base then begin
      (* Both children frozen: the node may predate the freeze, in
         which case returning the frozen handle keeps results on the
         shared, already-canonical part of the space. *)
      let fz = c.c_fz in
      let b = hash3 v l h land fz.fz_mask in
      let rec find n =
        if n = -1 then -1
        else if fzf fz n 0 = v && fzf fz n 1 = l && fzf fz n 2 = h then n
        else find (fzf fz n 3)
      in
      let found = find fz.fz_buckets.(b) in
      if found >= 0 then found else cmk_local c v l h
    end
    else cmk_local c v l h
  end

let ctx_ithvar c i =
  if i < 0 || i >= c.c_fz.fz_nvars then invalid_arg "Bdd.ctx_ithvar";
  cmk c i bdd_false bdd_true

let ctx_nithvar c i =
  if i < 0 || i >= c.c_fz.fz_nvars then invalid_arg "Bdd.ctx_nithvar";
  cmk c i bdd_true bdd_false

(* The ctx cache accepts an entry if it was written since the last
   reset, or if every handle in it is frozen (such entries describe the
   immutable part of the space and survive resets — repeated warm
   queries hit them forever). *)
let ccache_lookup c op a b d =
  let i = (hash3 (op + (a * 31)) b d land c.c_cache_mask) * 6 in
  let t = c.c_cache in
  if
    t.(i) = op
    && t.(i + 1) = a
    && t.(i + 2) = b
    && t.(i + 3) = d
    && (t.(i + 5) = c.c_gen
       ||
       let base = c.c_fz.fz_base in
       a < base && b < base && d < base && t.(i + 4) < base)
  then begin
    c.c_hits <- c.c_hits + 1;
    t.(i + 4)
  end
  else begin
    c.c_misses <- c.c_misses + 1;
    -1
  end

let ccache_store c op a b d r =
  let i = (hash3 (op + (a * 31)) b d land c.c_cache_mask) * 6 in
  let t = c.c_cache in
  t.(i) <- op;
  t.(i + 1) <- a;
  t.(i + 2) <- b;
  t.(i + 3) <- d;
  t.(i + 4) <- r;
  t.(i + 5) <- c.c_gen

let rec cnot c f =
  if f = bdd_false then bdd_true
  else if f = bdd_true then bdd_false
  else begin
    let cached = ccache_lookup c op_not f 0 0 in
    if cached >= 0 then cached
    else begin
      let r = cmk c (cvar c f) (cnot c (clow c f)) (cnot c (chigh c f)) in
      ccache_store c op_not f 0 0 r;
      r
    end
  end

let rec cand c f g =
  if f = g || g = bdd_true then f
  else if f = bdd_true then g
  else if f = bdd_false || g = bdd_false then bdd_false
  else begin
    let f, g = if f > g then (g, f) else (f, g) in
    let cached = ccache_lookup c op_and f g 0 in
    if cached >= 0 then cached
    else begin
      let vf = cvar c f and vg = cvar c g in
      let r =
        if vf = vg then cmk c vf (cand c (clow c f) (clow c g)) (cand c (chigh c f) (chigh c g))
        else if vf < vg then cmk c vf (cand c (clow c f) g) (cand c (chigh c f) g)
        else cmk c vg (cand c f (clow c g)) (cand c f (chigh c g))
      in
      ccache_store c op_and f g 0 r;
      r
    end
  end

let rec cor c f g =
  if f = g || g = bdd_false then f
  else if f = bdd_false then g
  else if f = bdd_true || g = bdd_true then bdd_true
  else begin
    let f, g = if f > g then (g, f) else (f, g) in
    let cached = ccache_lookup c op_or f g 0 in
    if cached >= 0 then cached
    else begin
      let vf = cvar c f and vg = cvar c g in
      let r =
        if vf = vg then cmk c vf (cor c (clow c f) (clow c g)) (cor c (chigh c f) (chigh c g))
        else if vf < vg then cmk c vf (cor c (clow c f) g) (cor c (chigh c f) g)
        else cmk c vg (cor c f (clow c g)) (cor c f (chigh c g))
      in
      ccache_store c op_or f g 0 r;
      r
    end
  end

let rec cdiff c f g =
  if f = bdd_false || g = bdd_true || f = g then bdd_false
  else if g = bdd_false then f
  else if f = bdd_true then cnot c g
  else begin
    let cached = ccache_lookup c op_diff f g 0 in
    if cached >= 0 then cached
    else begin
      let vf = cvar c f and vg = cvar c g in
      let r =
        if vf = vg then cmk c vf (cdiff c (clow c f) (clow c g)) (cdiff c (chigh c f) (chigh c g))
        else if vf < vg then cmk c vf (cdiff c (clow c f) g) (cdiff c (chigh c f) g)
        else cmk c vg (cdiff c f (clow c g)) (cdiff c f (chigh c g))
      in
      ccache_store c op_diff f g 0 r;
      r
    end
  end

let rec cskip_cube c cube v =
  if is_const cube then cube
  else if cvar c cube < v then cskip_cube c (chigh c cube) v
  else cube

let rec cexist c cube f =
  if is_const f then f
  else begin
    let cube = cskip_cube c cube (cvar c f) in
    if cube = bdd_true then f
    else begin
      let cached = ccache_lookup c op_exist f cube 0 in
      if cached >= 0 then cached
      else begin
        let v = cvar c f in
        let r =
          if cvar c cube = v then begin
            let r0 = cexist c (chigh c cube) (clow c f) in
            if r0 = bdd_true then bdd_true else cor c r0 (cexist c (chigh c cube) (chigh c f))
          end
          else cmk c v (cexist c cube (clow c f)) (cexist c cube (chigh c f))
        in
        ccache_store c op_exist f cube 0 r;
        r
      end
    end
  end

let rec crelprod c cube f g =
  if f = bdd_false || g = bdd_false then bdd_false
  else if f = g || g = bdd_true then cexist c cube f
  else if f = bdd_true then cexist c cube g
  else begin
    let vf = cvar c f and vg = cvar c g in
    let v = if vf < vg then vf else vg in
    let cube = cskip_cube c cube v in
    if cube = bdd_true then cand c f g
    else begin
      let f, g, vf, vg = if f > g then (g, f, vg, vf) else (f, g, vf, vg) in
      let cached = ccache_lookup c op_relprod f g cube in
      if cached >= 0 then cached
      else begin
        let f0, f1 = if vf = v then (clow c f, chigh c f) else (f, f) in
        let g0, g1 = if vg = v then (clow c g, chigh c g) else (g, g) in
        let r =
          if cvar c cube = v then begin
            let r0 = crelprod c (chigh c cube) f0 g0 in
            if r0 = bdd_true then bdd_true else cor c r0 (crelprod c (chigh c cube) f1 g1)
          end
          else cmk c v (crelprod c cube f0 g0) (crelprod c cube f1 g1)
        in
        ccache_store c op_relprod f g cube r;
        r
      end
    end
  end

let ctx_not c f = cnot c f
let ctx_and c f g = cand c f g
let ctx_or c f g = cor c f g
let ctx_diff c f g = cdiff c f g
let ctx_exist c ~cube f = cexist c cube f
let ctx_relprod c ~cube f g = crelprod c cube f g

let ctx_cube_of_vars c vs =
  let sorted = List.sort_uniq compare vs in
  List.fold_right (fun v acc -> cmk c v bdd_false acc) sorted bdd_true

let ctx_const_value c ~bits value =
  let w = Array.length bits in
  if w < Sys.int_size - 1 && value lsr w <> 0 then invalid_arg "Bdd.ctx_const_value: value too wide";
  let acc = ref bdd_true in
  for i = w - 1 downto 0 do
    let lit = if (value lsr i) land 1 = 1 then ctx_ithvar c bits.(i) else ctx_nithvar c bits.(i) in
    acc := cand c lit !acc
  done;
  !acc

let ctx_satcount c ~vars f =
  let len = Array.length vars in
  let pos = Hashtbl.create len in
  Array.iteri (fun i v -> Hashtbl.add pos v i) vars;
  let memo = Hashtbl.create 64 in
  let rec count n i =
    if n = bdd_false then 0.0
    else if n = bdd_true then Float.pow 2.0 (float_of_int (len - i))
    else begin
      let j =
        match Hashtbl.find_opt pos (cvar c n) with
        | Some j -> j
        | None -> invalid_arg "Bdd.ctx_satcount: support not included in vars"
      in
      let sub =
        match Hashtbl.find_opt memo n with
        | Some sub -> sub
        | None ->
          let sub = count (clow c n) (j + 1) +. count (chigh c n) (j + 1) in
          Hashtbl.add memo n sub;
          sub
      in
      sub *. Float.pow 2.0 (float_of_int (j - i))
    end
  in
  count f 0

let ctx_iter_sat c ~vars yield f =
  let len = Array.length vars in
  let assignment = Array.make len false in
  let rec go i n =
    if n <> bdd_false then
      if i = len then begin
        if n = bdd_true then yield assignment else invalid_arg "Bdd.ctx_iter_sat: support not included in vars"
      end
      else begin
        (* Terminal slots hold [terminal_var], so [cvar] is the level. *)
        let vn = cvar c n in
        if vn = vars.(i) then begin
          assignment.(i) <- false;
          go (i + 1) (clow c n);
          assignment.(i) <- true;
          go (i + 1) (chigh c n)
        end
        else if vn > vars.(i) then begin
          assignment.(i) <- false;
          go (i + 1) n;
          assignment.(i) <- true;
          go (i + 1) n
        end
        else invalid_arg "Bdd.ctx_iter_sat: vars must be sorted and include the support"
      end
  in
  go 0 f
