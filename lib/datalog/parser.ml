type error = { message : string; line : int }

exception Parse_error of error

type state = { toks : (Lexer.token * int) array; file : string; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek_line st = snd st.toks.(st.pos)

let peek2 st = if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else Lexer.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st message = raise (Parse_error { message; line = peek_line st })

let expect st tok what =
  if peek st = tok then advance st
  else fail st (Format.asprintf "expected %s, found %a" what Lexer.pp_token (peek st))

let ident st what =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> fail st (Format.asprintf "expected %s, found %a" what Lexer.pp_token t)

let term st : Ast.term =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    Ast.Var s
  | Lexer.STRING s ->
    advance st;
    Ast.Const s
  | Lexer.INT i ->
    advance st;
    Ast.Const (string_of_int i)
  | Lexer.UNDERSCORE ->
    advance st;
    Ast.Wildcard
  | t -> fail st (Format.asprintf "expected a term, found %a" Lexer.pp_token t)

let atom st : Ast.atom =
  let pred = ident st "a predicate name" in
  expect st Lexer.LPAREN "'('";
  let args = ref [] in
  if peek st <> Lexer.RPAREN then begin
    args := [ term st ];
    while peek st = Lexer.COMMA do
      advance st;
      args := term st :: !args
    done
  end;
  expect st Lexer.RPAREN "')'";
  { Ast.pred; args = List.rev !args }

let literal st : Ast.literal =
  match peek st with
  | Lexer.BANG ->
    advance st;
    Ast.Neg (atom st)
  | Lexer.IDENT _ when peek2 st = Lexer.LPAREN -> Ast.Pos (atom st)
  | Lexer.IDENT _ | Lexer.STRING _ | Lexer.INT _ | Lexer.UNDERSCORE -> (
    let left = term st in
    match peek st with
    | Lexer.EQ ->
      advance st;
      Ast.Cmp (left, Ast.Eq, term st)
    | Lexer.NEQ ->
      advance st;
      Ast.Cmp (left, Ast.Neq, term st)
    | t -> fail st (Format.asprintf "expected '=' or '!=' after term, found %a" Lexer.pp_token t))
  | t -> fail st (Format.asprintf "expected a literal, found %a" Lexer.pp_token t)

let rule st : Ast.rule =
  let line = peek_line st in
  let head = atom st in
  let body =
    if peek st = Lexer.TURNSTILE then begin
      advance st;
      let lits = ref [ literal st ] in
      while peek st = Lexer.COMMA do
        advance st;
        lits := literal st :: !lits
      done;
      List.rev !lits
    end
    else []
  in
  expect st Lexer.DOT "'.' at end of rule";
  { Ast.head; body; rule_pos = Some { Ast.file = st.file; line } }

let rules_until_eof st =
  let out = ref [] in
  while peek st <> Lexer.EOF do
    out := rule st :: !out
  done;
  List.rev !out

let section st name =
  match peek st with
  | Lexer.IDENT s when s = name -> advance st
  | t -> fail st (Format.asprintf "expected section %s, found %a" name Lexer.pp_token t)

let domain_decl st : Ast.domain_decl =
  let dom_name = ident st "a domain name" in
  let dom_size =
    match peek st with
    | Lexer.INT i ->
      advance st;
      i
    | t -> fail st (Format.asprintf "expected domain size, found %a" Lexer.pp_token t)
  in
  let dom_map =
    match peek st with
    | Lexer.STRING s ->
      advance st;
      Some s
    | _ -> None
  in
  { Ast.dom_name; dom_size; dom_map }

let rel_decl st : Ast.rel_decl =
  let rel_kind, rel_name =
    match peek st with
    | Lexer.IDENT "input" when (match peek2 st with Lexer.IDENT _ -> true | _ -> false) ->
      advance st;
      (Ast.Input, ident st "a relation name")
    | Lexer.IDENT "output" when (match peek2 st with Lexer.IDENT _ -> true | _ -> false) ->
      advance st;
      (Ast.Output, ident st "a relation name")
    | _ -> (Ast.Internal, ident st "a relation name")
  in
  expect st Lexer.LPAREN "'('";
  let attr () =
    let a = ident st "an attribute name" in
    expect st Lexer.COLON "':'";
    let d = ident st "a domain name" in
    (a, d)
  in
  let attrs = ref [ attr () ] in
  while peek st = Lexer.COMMA do
    advance st;
    attrs := attr () :: !attrs
  done;
  expect st Lexer.RPAREN "')'";
  { Ast.rel_name; rel_kind; rel_attrs = List.rev !attrs }

let parse ?(file = "<datalog>") src =
  let st = { toks = Array.of_list (Lexer.tokens src); file; pos = 0 } in
  section st "DOMAINS";
  let domains = ref [] in
  let var_order = ref None in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.IDENT "RELATIONS" -> continue := false
    | Lexer.IDENT _ -> domains := domain_decl st :: !domains
    | Lexer.DOT -> (
      advance st;
      (match peek st with
      | Lexer.IDENT "bddvarorder" -> advance st
      | t -> fail st (Format.asprintf "expected 'bddvarorder' after '.', found %a" Lexer.pp_token t));
      match peek st with
      | Lexer.STRING s ->
        advance st;
        var_order := Some (String.split_on_char ' ' s |> List.filter (fun x -> x <> ""))
      | t -> fail st (Format.asprintf "expected a quoted order after .bddvarorder, found %a" Lexer.pp_token t))
    | _ -> continue := false
  done;
  section st "RELATIONS";
  let relations = ref [] in
  while (match peek st with Lexer.IDENT "RULES" -> false | Lexer.IDENT _ -> true | _ -> false) do
    relations := rel_decl st :: !relations
  done;
  section st "RULES";
  let rules = rules_until_eof st in
  { Ast.domains = List.rev !domains; var_order = !var_order; relations = List.rev !relations; rules }

let parse_rules ?(file = "<datalog>") src =
  let st = { toks = Array.of_list (Lexer.tokens src); file; pos = 0 } in
  rules_until_eof st
