(** The query-plan IR: Datalog rules lowered to BDD relational algebra
    (bddbddb, §2.4 of the paper), with the §2.4.1 optimizations as
    separable [plan -> plan] passes.

    A {!plan} is a purely symbolic object — no BDDs, no [Space] — so it
    can be built, optimized, validated, and pretty-printed without an
    engine, and the very same plan can be executed by two independent
    executors: the BDD hot path ({!Engine}) and the tuple-level
    reference interpreter ({!Naive_eval.solve_ir}).  That dual
    execution is the differential-testing contract every pass is held
    to: for any toggle combination, both executors must produce
    identical tuple sets.

    The operations of the algebra, per rule:
    - {e select} constants ({!Cconst} columns) and {e equate}
      duplicate-variable columns ({!Cdup});
    - {e exist}/project away dead columns ([quantify] lists);
    - {e rename} storage instances to the rule binding (implicit in the
      per-column storage-vs-{!plan.binding} mismatch — see
      {!rename_stats});
    - {e relprod}/join ({!Join}), {e diff} ({!Subtract}), constraint
      application ({!Constrain});
    - {e union-into-head} ({!head}). *)

(** One column of an atom, positionally. *)
type col =
  | Cvar of string  (** first occurrence of this variable in the atom *)
  | Cdup of int  (** repeat of the variable first seen at this column *)
  | Cconst of int * string  (** resolved element index, source text *)
  | Cwild

type source = {
  src_rel : string;
  src_cols : col array;
  src_hoist : bool;
      (** loop-invariant hoisting: cache the prepared (selected,
          equated, projected, renamed) operand while the source
          relation is unchanged *)
}

type constr =
  | Cmp_vv of { left : string; op : Ast.cmp_op; right : string }
  | Cmp_vc of { var : string; op : Ast.cmp_op; value : int; text : string }

type step_op =
  | Join of source
  | Subtract of source  (** negated atom: set difference *)
  | Constrain of constr

type step = {
  op : step_op;
  quantify : string list;
      (** variables existentially quantified immediately after this
          step (sorted by name); each non-head variable appears in
          exactly one step's [quantify] across the plan *)
}

type head = { hd_rel : string; hd_cols : col array }

type plan = {
  rule : Ast.rule;
  var_doms : (string * string) list;
      (** variable -> domain name, in {!Ast.vars_of_rule} order *)
  binding : (string * int) list;
      (** the physical-domain assignment: variable -> instance of its
          domain, in {!Ast.vars_of_rule} order; injective per domain *)
  steps : step array;
  head : head;
  deltas : int list;
      (** {!Join} step indices to evaluate semi-naively (one delta pass
          per index); empty = full evaluation *)
}

exception Plan_error of { message : string; pos : Ast.pos option }
(** Lowering/validation failure, carrying the rule's source position
    when known. *)

(** {2 Lowering} *)

val storage_slots : Resolve.t -> string -> (string * int) array
(** Storage layout of a relation: per column, (domain name, physical
    instance).  The k-th attribute of domain D is stored in instance k
    of D. *)

val assign : Resolve.t -> greedy:bool -> Ast.rule -> (string * int) list
(** Physical-instance assignment for every variable of the rule, in
    {!Ast.vars_of_rule} order.  [greedy = false] is first-free in
    variable order; [greedy = true] is the attributes-naming
    optimization: variables in descending occurrence count, each taking
    the free instance most of its storage positions already use. *)

val lower : Resolve.t -> Ast.rule -> plan
(** Datalog -> IR, unoptimized: naive (non-greedy) binding, body
    scheduled positives-first with negations/comparisons flushed as
    soon as fully bound, all projection deferred to the last step, no
    deltas, no hoisting.  Raises {!Plan_error}. *)

(** {2 Optimization passes} *)

type toggles = {
  naming : bool;  (** greedy physical-instance assignment (§2.4.1) *)
  reorder : bool;  (** greedy join reordering: most-constrained first *)
  pushdown : bool;  (** quantify variables at their last use *)
  semi_naive : bool;  (** delta rewriting of recursive joins *)
  hoist : bool;  (** loop-invariant operand caching *)
}

val default_toggles : toggles
(** naming, pushdown, semi-naive, hoist on; reorder off — mirrors
    {!Engine.default_options}. *)

type pass = {
  pass_name : string;
  pass_doc : string;
  pass_on : bool;
  pass_apply : Resolve.t -> plan -> plan;
}

val pass_list : toggles -> stratum_preds:string list -> pass list
(** The declared pipeline, in application order: naming, reorder,
    pushdown, semi-naive, hoist.  [stratum_preds] are the predicates of
    the rule's stratum (semi-naive rewrites joins against them). *)

val optimize : Resolve.t -> ?toggles:toggles -> stratum_preds:string list -> plan -> plan
(** Apply the enabled passes in order, then {!check_plan} the result. *)

(** {2 Validation and inspection} *)

val check_plan : Resolve.t -> plan -> unit
(** Structural invariants: binding covers every variable and is
    injective per domain; column arities match declarations; [Cdup]
    back-references hit a [Cvar]; no wildcard in the head; quantified
    variables are exactly the non-head variables, each quantified once
    and never used by a later step; [deltas] index {!Join} steps.
    Raises {!Plan_error}. *)

val instance_demand : Resolve.t -> plan list -> (string, int) Hashtbl.t
(** Physical instances needed per domain: max over storage layouts of
    all declared relations and the bindings of the given plans
    (at least 1 per domain). *)

val rename_stats : Resolve.t -> plan -> int * int
(** (renamed column positions, replace operations): a source or head
    column whose storage instance differs from its variable's binding
    costs one renamed position; each source (and the head) with at
    least one renamed position costs one [Bdd.replace]. *)

val pp_plan : Resolve.t -> Format.formatter -> plan -> unit
(** Human-readable plan: the rule with its source position, the
    binding with domain widths, each step with its renames/quantifier/
    delta annotations, the head, and the rename totals. *)
