type term = Var of string | Const of string | Wildcard

type atom = { pred : string; args : term list }

type literal = Pos of atom | Neg of atom | Cmp of term * cmp_op * term
and cmp_op = Eq | Neq

type pos = { file : string; line : int }

type rule = { head : atom; body : literal list; rule_pos : pos option }
type domain_decl = { dom_name : string; dom_size : int; dom_map : string option }
type rel_kind = Input | Output | Internal
type rel_decl = { rel_name : string; rel_kind : rel_kind; rel_attrs : (string * string) list }
type program = {
  domains : domain_decl list;
  var_order : string list option;
  relations : rel_decl list;
  rules : rule list;
}

let vars_of_terms terms =
  List.fold_left
    (fun acc t ->
      match t with
      | Var v when not (List.mem v acc) -> acc @ [ v ]
      | Var _ | Const _ | Wildcard -> acc)
    [] terms

let vars_of_atom a = vars_of_terms a.args

let vars_of_literal = function
  | Pos a | Neg a -> vars_of_atom a
  | Cmp (l, _, r) -> vars_of_terms [ l; r ]

let vars_of_rule r =
  List.fold_left
    (fun acc l -> List.fold_left (fun acc v -> if List.mem v acc then acc else acc @ [ v ]) acc (vars_of_literal l))
    (vars_of_atom r.head) r.body

let pp_pos fmt p = Format.fprintf fmt "%s:%d" p.file p.line

(* "file:line: " when the rule carries a position, nothing otherwise —
   the prefix every rule-level diagnostic uses. *)
let pp_pos_prefix fmt r =
  match r.rule_pos with
  | Some p -> Format.fprintf fmt "%a: " pp_pos p
  | None -> ()

let pp_term fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Const c -> Format.fprintf fmt "%S" c
  | Wildcard -> Format.pp_print_string fmt "_"

let pp_atom fmt a =
  Format.fprintf fmt "%s(%a)" a.pred (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_term) a.args

let pp_cmp_op fmt = function
  | Eq -> Format.pp_print_string fmt "="
  | Neq -> Format.pp_print_string fmt "!="

let pp_literal fmt = function
  | Pos a -> pp_atom fmt a
  | Neg a -> Format.fprintf fmt "!%a" pp_atom a
  | Cmp (l, op, r) -> Format.fprintf fmt "%a %a %a" pp_term l pp_cmp_op op pp_term r

let pp_rule fmt r =
  match r.body with
  | [] -> Format.fprintf fmt "%a." pp_atom r.head
  | body ->
    Format.fprintf fmt "%a :- %a." pp_atom r.head
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_literal)
      body

let pp_program fmt p =
  Format.fprintf fmt "DOMAINS@.";
  List.iter
    (fun d ->
      match d.dom_map with
      | Some m -> Format.fprintf fmt "%s %d %S@." d.dom_name d.dom_size m
      | None -> Format.fprintf fmt "%s %d@." d.dom_name d.dom_size)
    p.domains;
  (match p.var_order with
  | Some order -> Format.fprintf fmt ".bddvarorder %S@." (String.concat " " order)
  | None -> ());
  Format.fprintf fmt "@.RELATIONS@.";
  List.iter
    (fun r ->
      let kind =
        match r.rel_kind with
        | Input -> "input "
        | Output -> "output "
        | Internal -> ""
      in
      Format.fprintf fmt "%s%s (%a)@." kind r.rel_name
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") (fun f (a, d) -> Format.fprintf f "%s : %s" a d))
        r.rel_attrs)
    p.relations;
  Format.fprintf fmt "@.RULES@.";
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_rule r) p.rules
