(** Abstract syntax of the Datalog dialect of the paper (§2.1-§2.2).

    A program has three sections: DOMAINS (name, size, optional element
    name-map file), RELATIONS (with [input]/[output] qualifiers), and
    RULES (Prolog-style, with negation [!], don't-cares [_], quoted
    constants, and the [=]/[!=] comparisons used by the §5 queries). *)

type term =
  | Var of string
  | Const of string  (** quoted name or decimal literal *)
  | Wildcard

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of term * cmp_op * term

and cmp_op = Eq | Neq

type pos = { file : string; line : int }
(** Source position of a rule: the file (or a synthetic name like
    ["<algo5>"] for generated program text) and 1-based line of the
    rule head.  Threaded from the parser into query plans so plan-time
    failures and [explain] can say which rule they are about. *)

type rule = { head : atom; body : literal list; rule_pos : pos option }

type domain_decl = {
  dom_name : string;
  dom_size : int;
  dom_map : string option;  (** element-names file, e.g. "variable.map" *)
}

type rel_kind = Input | Output | Internal

type rel_decl = {
  rel_name : string;
  rel_kind : rel_kind;
  rel_attrs : (string * string) list;  (** attribute name, domain name *)
}

type program = {
  domains : domain_decl list;
  var_order : string list option;
      (** bddbddb's [.bddvarorder] directive: the relative order of the
          domains' variable blocks, e.g. [Some ["C"; "V"; "H"; ...]] *)
  relations : rel_decl list;
  rules : rule list;
}

val vars_of_atom : atom -> string list
(** Distinct variables, in first-occurrence order. *)

val vars_of_literal : literal -> string list
val vars_of_rule : rule -> string list

val pp_pos : Format.formatter -> pos -> unit
(** ["file:line"]. *)

val pp_pos_prefix : Format.formatter -> rule -> unit
(** ["file:line: "] when the rule has a position, [""] otherwise. *)

val pp_term : Format.formatter -> term -> unit
val pp_cmp_op : Format.formatter -> cmp_op -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_literal : Format.formatter -> literal -> unit
val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit
(** Prints a program in the concrete syntax accepted by {!Parser}. *)
