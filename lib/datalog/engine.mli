(** The bddbddb evaluation engine: the BDD executor and fixpoint driver
    for {!Ralg} query plans.

    The pipeline is split in three (§2.4 of the paper):
    + {!Ralg.lower}: Datalog -> relational-algebra IR;
    + {!Ralg.optimize}: separable [plan -> plan] passes, toggled from
      {!options} (see {!toggles_of_options});
    + this module: compile each plan's sources/constraints/head to BDD
      pipelines and run the stratified (semi-naive) fixpoint.

    The §2.4.1 optimizations are individually toggleable (for the §6.4
    ablation benchmarks):

    - {e attributes naming}: rule variables are greedily assigned the
      physical block most of their occurrences are already stored in,
      minimizing [Bdd.replace] work ([greedy_blocks]);
    - {e rule application order}: strata (SCCs of the predicate
      dependency graph) are solved in dependency order; non-recursive
      rules run once (always on — see {!Stratify});
    - {e incrementalization}: recursive rules are evaluated
      semi-naively, joining only against the tuples new since the rule
      last ran, and prepared (renamed/selected) operand BDDs are cached
      while their source relation is unchanged — the paper's
      loop-invariant detection ([semi_naive], [hoist]). *)

type options = {
  semi_naive : bool;
  hoist : bool;
  greedy_blocks : bool;
  reorder_joins : bool;
      (** greedy subgoal reordering: most-constrained atom first, then
          by shared bound variables (off by default — the paper's rules
          are already written in good join order) *)
  pushdown : bool;
      (** early quantification: project each variable away at its last
          use instead of at the end of the rule *)
  gc_interval : int;  (** run [Bdd.gc] every N rule applications; 0 = never *)
  node_hint : int;
  cache_bits : int;
  budget : Budget.t option;
      (** resource budget: installed on the manager at {!create} (node
          and allocation limits enforced inside [Bdd.mk]) and polled by
          the engine between rule applications (deadline, cancellation)
          and fixpoint rounds (iteration limit) *)
  page_bits : int option;
      (** node-arena page size (log2 slots per page) — see
          {!Bdd.create}; [None] = the arena default *)
  mem_cap_bytes : int option;
      (** cap on resident node-page bytes: past it, cold pages spill to
          [spill_path] and fault back in on demand; [None] = uncapped
          (everything resident, no pager overhead) *)
  spill_path : string option;
      (** spill file for evicted pages (a driver points this into its
          store's scratch area); [None] = a fresh temp file *)
  gc_mode : Bdd.gc_mode option;
      (** [None] defers to {!Space.create}'s default ({!Bdd.Compact}:
          collections renumber survivors clustered by variable level) *)
}

val default_options : options

val toggles_of_options : options -> Ralg.toggles
(** The pass toggles an engine with these options hands to
    {!Ralg.optimize}. *)

type t

type rule_stat = {
  rs_rule : Ast.rule;
  rs_applications : int;  (** evaluate+commit cycles of this rule *)
  rs_seconds : float;  (** wall time spent in them *)
  rs_cache_lookups : int;
      (** BDD op-cache lookups (hits + misses) they performed — a
          machine-independent proxy for BDD work *)
}

type stats = {
  rule_applications : int;
  iterations : int;  (** total fixpoint rounds across all strata *)
  strata : int;
  peak_live_nodes : int;
  solve_seconds : float;
  gcs : int;  (** BDD garbage collections during the whole run *)
  op_cache : (string * int * int) list;
      (** per-operation-class (name, hits, misses) of the BDD op cache
          since manager creation — see {!Bdd.cache_stats_by_class} *)
  rule_stats : rule_stat list;
      (** per-rule attribution, in stratum order (once rules before
          loop rules); cumulative across runs of this engine *)
  arena : Bdd.arena_stats;
      (** node-arena pager counters (pages resident/pinned, evictions,
          spill traffic, table bytes) at solve end *)
}

val cache_hit_rate : stats -> float
(** Overall op-cache hit fraction in [0, 1] from [op_cache]. *)

exception Engine_error of string

val create :
  ?options:options ->
  ?element_names:(string -> string array option) ->
  ?domain_order:string list ->
  Ast.program ->
  t
(** Resolves, lowers, and optimizes the program ({!Ralg}), then
    allocates one interleaved group of physical blocks per logical
    domain (in [domain_order] if given, else declaration order) and
    compiles every plan to a BDD step pipeline.  Plan-time failures
    are reported as {!Engine_error} prefixed with the offending rule's
    [file:line] when known.  Raises {!Resolve.Check_error} /
    {!Stratify.Not_stratified} / {!Engine_error}. *)

val parse_and_create :
  ?options:options ->
  ?element_names:(string -> string array option) ->
  ?domain_order:string list ->
  ?file:string ->
  string ->
  t
(** Convenience: {!Parser.parse} then {!create}.  [file] is recorded in
    rule positions for diagnostics and {!explain}. *)

val space : t -> Space.t
val domain : t -> string -> Domain.t
val relation : t -> string -> Relation.t
(** The live relation object: read results from it after {!run}, load
    input tuples into it before. *)

val relations : t -> Relation.t list

val exported_relations : t -> Relation.t list
(** The program's interface relations — declared inputs (including
    computed inputs installed by a driver) and outputs, in declaration
    order, excluding internal working relations.  This is the set a
    persistent results store ({!Bddrel.Store}) saves after a solve. *)

val declared_relations : t -> Relation.t list
(** Every declared relation, internals included, in declaration order.
    An update-capable store saves these: an incremental re-solve needs
    the previous run's internal working relations (e.g. [assign]) as
    its starting point, not just the interface. *)

val input_relations : t -> Relation.t list
(** The declared [Input] relations, in declaration order — the set an
    incremental driver diffs against a previous run's stored values. *)

val negated_relations : t -> string list
(** Names of relations some optimized plan reads under negation
    (subtracts).  Additions to these can {e retract} derived facts, so
    {!run_incremental}'s additions-only re-seeding is unsound when any
    of them changed: the driver must fall back to a cold solve. *)

val ir_plans : t -> (Ralg.plan list * Ralg.plan list) list
(** The optimized query plans this engine executes, per stratum as
    (once, loop) — the exact IR also accepted by
    {!Naive_eval.solve_ir}. *)

val set_tuples : t -> string -> int array list -> unit
val add_tuple : t -> string -> int array -> unit

val run : t -> stats
(** Solve to fixpoint.  Idempotent: calling again after adding tuples
    to input relations resumes and re-converges.  This also makes an
    aborted run recoverable: if a previous [run] raised
    {!Bdd.Limit_exceeded}, relations keep the (sound, partial) tuples
    derived so far, and calling [run] again — typically after
    {!set_budget} with a looser budget or [None] — re-converges to the
    exact fixpoint.  Raises {!Bdd.Limit_exceeded} when the installed
    budget is violated. *)

val run_incremental : t -> changed:(string * Bdd.t) list -> stats
(** Incremental re-solve after additions to already-solved relations.

    Precondition: every relation holds a {e sound under-approximation}
    of the new fixpoint that is complete except for consequences of
    [changed] — typically the previous run's fixpoint with the new
    input tuples unioned in.  [changed] lists, per modified relation,
    the BDD of tuples {e added} relative to that previous state
    (removals are not supported here: with a removal the old fixpoint
    is no longer an under-approximation, and the driver must cold-solve
    — see {!negated_relations} for the other unsoundness gate).

    Instead of evaluating every rule against full relations, each rule
    re-runs only at body positions whose source actually gained tuples,
    joining against the fresh tuples alone, and recursive strata seed
    their semi-naive deltas with just the accumulated fresh set — so an
    update that touches nothing converges in one empty pass per
    stratum, and a small edit costs time proportional to what it
    dirties.  Produces the exact fixpoint of the monotone program on
    the new inputs (identical to a cold {!run}).  Falls back to a full
    {!run} when [semi_naive] is off.  Raises {!Bdd.Limit_exceeded} on
    budget violation, like {!run}. *)

val solve : t -> (stats, Solver_error.t) result
(** {!run} with structured errors instead of exceptions:
    [Error (Budget_exhausted _)] when the budget is violated (carrying
    the reason, fixpoint rounds completed, and live node count at
    abort), [Error (Internal _)] for {!Engine_error}.  Other exceptions
    propagate. *)

val solve_incremental : t -> changed:(string * Bdd.t) list -> (stats, Solver_error.t) result
(** {!run_incremental} with the same structured-error wrapping as
    {!solve}. *)

(** {2 Fixpoint certification}

    Result checking, independent of the fixpoint driver: one full
    (non-semi-naive, non-committing) application of every compiled
    rule against the relations' current values.  If the relations hold
    a fixpoint of the loaded inputs, no rule derives anything new and
    the list is empty; otherwise each violation names the rule, its
    stratum, and the tuples its single application would add.  This is
    the apply-once half of the {!Pta.Certify} check — far cheaper than
    a solve, and equally valid against a cold, incremental, capped, or
    hand-coded result once its relations are installed. *)

type violation = {
  vio_stratum : int;  (** 0-based stratum index of the violated rule *)
  vio_rule : Ast.rule;  (** the rule, carrying its source position *)
  vio_head : Relation.t;  (** the head relation missing tuples *)
  vio_fresh : Bdd.t;
      (** the missing tuples, over the head's blocks.  Only rooted
          while the check runs: enumerate witnesses before any further
          BDD work that could trigger a collection. *)
}

val check_fixpoint : ?max_violations:int -> t -> violation list
(** Scan every stratum's rules in order, stopping after
    [max_violations] (default: unbounded).  Commits nothing and leaves
    every relation untouched.  Raises {!Bdd.Limit_exceeded} when an
    installed budget is violated mid-check. *)

val set_budget : t -> Budget.t option -> unit
(** Replace (or clear, with [None]) the budget installed at creation,
    both on the engine and the underlying BDD manager.  Use together
    with re-{!run} to resume an aborted solve. *)

val last_stats : t -> stats option

val explain : Format.formatter -> t -> unit
(** Pretty-print what this engine will (or did) execute: the domains
    with sizes, widths, and physical instance counts; the optimization
    pass pipeline with each pass's on/off state; every rule's optimized
    plan ({!Ralg.pp_plan}) with rename counts; and, after a solve,
    per-rule time/BDD-op attribution sorted by time. *)
