(** The bddbddb evaluation engine: translates a Datalog program into
    BDD relational algebra and solves it to fixpoint.

    The three §2.4.1 optimizations are implemented and individually
    toggleable (for the §6.4 ablation benchmarks):

    - {e attributes naming}: rule variables are greedily assigned the
      physical block most of their occurrences are already stored in,
      minimizing [Bdd.replace] work ([greedy_blocks]);
    - {e rule application order}: strata (SCCs of the predicate
      dependency graph) are solved in dependency order; non-recursive
      rules run once (always on — see {!Stratify});
    - {e incrementalization}: recursive rules are evaluated
      semi-naively, joining only against the tuples new since the rule
      last ran, and prepared (renamed/selected) operand BDDs are cached
      while their source relation is unchanged — the paper's
      loop-invariant detection ([semi_naive], [hoist]). *)

type options = {
  semi_naive : bool;
  hoist : bool;
  greedy_blocks : bool;
  reorder_joins : bool;
      (** greedy subgoal reordering: most-constrained atom first, then
          by shared bound variables (off by default — the paper's rules
          are already written in good join order) *)
  gc_interval : int;  (** run [Bdd.gc] every N rule applications; 0 = never *)
  node_hint : int;
  cache_bits : int;
  budget : Budget.t option;
      (** resource budget: installed on the manager at {!create} (node
          and allocation limits enforced inside [Bdd.mk]) and polled by
          the engine between rule applications (deadline, cancellation)
          and fixpoint rounds (iteration limit) *)
}

val default_options : options

type t

type stats = {
  rule_applications : int;
  iterations : int;  (** total fixpoint rounds across all strata *)
  strata : int;
  peak_live_nodes : int;
  solve_seconds : float;
  gcs : int;  (** BDD garbage collections during the whole run *)
  op_cache : (string * int * int) list;
      (** per-operation-class (name, hits, misses) of the BDD op cache
          since manager creation — see {!Bdd.cache_stats_by_class} *)
}

val cache_hit_rate : stats -> float
(** Overall op-cache hit fraction in [0, 1] from [op_cache]. *)

exception Engine_error of string

val create :
  ?options:options ->
  ?element_names:(string -> string array option) ->
  ?domain_order:string list ->
  Ast.program ->
  t
(** Resolves and plans the program: allocates one interleaved group of
    physical blocks per logical domain (in [domain_order] if given,
    else declaration order) and compiles every rule to a step plan.
    Raises {!Resolve.Check_error} / {!Stratify.Not_stratified} /
    {!Engine_error}. *)

val parse_and_create :
  ?options:options ->
  ?element_names:(string -> string array option) ->
  ?domain_order:string list ->
  string ->
  t
(** Convenience: {!Parser.parse} then {!create}. *)

val space : t -> Space.t
val domain : t -> string -> Domain.t
val relation : t -> string -> Relation.t
(** The live relation object: read results from it after {!run}, load
    input tuples into it before. *)

val relations : t -> Relation.t list

val exported_relations : t -> Relation.t list
(** The program's interface relations — declared inputs (including
    computed inputs installed by a driver) and outputs, in declaration
    order, excluding internal working relations.  This is the set a
    persistent results store ({!Bddrel.Store}) saves after a solve. *)

val set_tuples : t -> string -> int array list -> unit
val add_tuple : t -> string -> int array -> unit

val run : t -> stats
(** Solve to fixpoint.  Idempotent: calling again after adding tuples
    to input relations resumes and re-converges.  This also makes an
    aborted run recoverable: if a previous [run] raised
    {!Bdd.Limit_exceeded}, relations keep the (sound, partial) tuples
    derived so far, and calling [run] again — typically after
    {!set_budget} with a looser budget or [None] — re-converges to the
    exact fixpoint.  Raises {!Bdd.Limit_exceeded} when the installed
    budget is violated. *)

val solve : t -> (stats, Solver_error.t) result
(** {!run} with structured errors instead of exceptions:
    [Error (Budget_exhausted _)] when the budget is violated (carrying
    the reason, fixpoint rounds completed, and live node count at
    abort), [Error (Internal _)] for {!Engine_error}.  Other exceptions
    propagate. *)

val set_budget : t -> Budget.t option -> unit
(** Replace (or clear, with [None]) the budget installed at creation,
    both on the engine and the underlying BDD manager.  Use together
    with re-{!run} to resume an aborted solve. *)

val last_stats : t -> stats option
