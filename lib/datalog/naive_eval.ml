module Tuples = Set.Make (struct
  type t = int list

  let compare = compare
end)

type result = { db : (string, Tuples.t ref) Hashtbl.t }

let lookup env v = List.assoc_opt v env

(* Match one atom argument against a tuple value, extending the
   environment; [None] means mismatch. *)
let match_arg (res : Resolve.t) dom env (arg : Ast.term) value =
  match arg with
  | Ast.Wildcard -> Some env
  | Ast.Const c -> if Resolve.const_index dom c = value then Some env else None
  | Ast.Var v -> (
    match lookup env v with
    | Some bound -> if bound = value then Some env else None
    | None ->
      ignore res;
      Some ((v, value) :: env))

let match_atom res (preds : (string, Resolve.pred) Hashtbl.t) db env (a : Ast.atom) =
  let p = Hashtbl.find preds a.Ast.pred in
  let tuples = !(Hashtbl.find db a.Ast.pred) in
  Tuples.fold
    (fun tu acc ->
      let rec go env args vals i =
        match (args, vals) with
        | [], [] -> Some env
        | arg :: args', v :: vals' -> (
          match match_arg res p.Resolve.doms.(i) env arg v with
          | Some env' -> go env' args' vals' (i + 1)
          | None -> None)
        | [], _ :: _ | _ :: _, [] -> None
      in
      match go env a.Ast.args tu 0 with
      | Some env' -> env' :: acc
      | None -> acc)
    tuples []

let term_value dom env (t : Ast.term) =
  match t with
  | Ast.Var v -> (
    match lookup env v with
    | Some x -> x
    | None -> raise (Resolve.Check_error "unbound variable in naive evaluation"))
  | Ast.Const c -> Resolve.const_index dom c
  | Ast.Wildcard -> raise (Resolve.Check_error "wildcard where a value is needed")

(* Domain of a comparison, needed to resolve constants on either side. *)
let cmp_domain res rule l r =
  match (l, r) with
  | Ast.Var v, _ | _, Ast.Var v -> Resolve.term_domain res rule v
  | (Ast.Const _ | Ast.Wildcard), (Ast.Const _ | Ast.Wildcard) ->
    raise (Resolve.Check_error "comparison without variables")

let eval_rule res db (rule : Ast.rule) =
  let preds = res.Resolve.preds in
  (* Positive atoms bind; negations and comparisons filter afterwards
     (all their variables are positively bound by safety). *)
  let positives = List.filter_map (function Ast.Pos a -> Some a | Ast.Neg _ | Ast.Cmp _ -> None) rule.Ast.body in
  let filters = List.filter (function Ast.Pos _ -> false | Ast.Neg _ | Ast.Cmp _ -> true) rule.Ast.body in
  let envs = List.fold_left (fun envs a -> List.concat_map (fun env -> match_atom res preds db env a) envs) [ [] ] positives in
  let envs =
    List.filter
      (fun env ->
        List.for_all
          (fun lit ->
            match lit with
            | Ast.Neg a -> match_atom res preds db env a = []
            | Ast.Cmp (l, op, r) ->
              let dom = cmp_domain res rule l r in
              let lv = term_value dom env l and rv = term_value dom env r in
              (match op with
              | Ast.Eq -> lv = rv
              | Ast.Neq -> lv <> rv)
            | Ast.Pos _ -> true)
          filters)
      envs
  in
  let hp = Hashtbl.find preds rule.Ast.head.Ast.pred in
  List.map
    (fun env -> List.mapi (fun i arg -> term_value hp.Resolve.doms.(i) env arg) rule.Ast.head.Ast.args)
    envs

let solve ?element_names (program : Ast.program) ~inputs =
  let res = Resolve.resolve ?element_names program in
  let strata = Stratify.strata program in
  let db : (string, Tuples.t ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (decl : Ast.rel_decl) -> Hashtbl.add db decl.Ast.rel_name (ref Tuples.empty)) program.Ast.relations;
  List.iter
    (fun (name, tuples) ->
      let slot =
        match Hashtbl.find_opt db name with
        | Some s -> s
        | None -> raise (Resolve.Check_error (Printf.sprintf "unknown input relation %s" name))
      in
      let p = Hashtbl.find res.Resolve.preds name in
      List.iter
        (fun tu ->
          if List.length tu <> Array.length p.Resolve.doms then
            raise (Resolve.Check_error (Printf.sprintf "tuple arity mismatch for %s" name));
          List.iteri
            (fun i v ->
              if v < 0 || v >= Domain.size p.Resolve.doms.(i) then
                raise (Resolve.Check_error (Printf.sprintf "value %d out of range for %s" v name)))
            tu;
          slot := Tuples.add tu !slot)
        tuples)
    inputs;
  let apply_rules rules =
    List.fold_left
      (fun changed rule ->
        let derived = eval_rule res db rule in
        let slot = Hashtbl.find db rule.Ast.head.Ast.pred in
        List.fold_left
          (fun changed tu ->
            if Tuples.mem tu !slot then changed
            else begin
              slot := Tuples.add tu !slot;
              true
            end)
          changed derived)
      false rules
  in
  List.iter
    (fun (st : Stratify.stratum) ->
      ignore (apply_rules st.Stratify.once_rules);
      if st.Stratify.loop_rules <> [] then begin
        let continue = ref true in
        while !continue do
          continue := apply_rules st.Stratify.loop_rules
        done
      end)
    strata;
  { db }

let tuples r name =
  match Hashtbl.find_opt r.db name with
  | Some s -> Tuples.elements !s
  | None -> raise (Resolve.Check_error (Printf.sprintf "unknown relation %s" name))

(* --- IR interpretation: the reference executor for Ralg plans ---

   Interprets the very same optimized plans the BDD engine compiles,
   over explicit environment sets, mirroring the engine's fixpoint
   driver (once rules, delta seeding, per-delta-position passes,
   pending rotation).  Differential testing between the two executors
   is the correctness contract of every optimization pass. *)

(* An environment is an assoc list sorted by variable name, so
   environments are canonical and sets of them deduplicate. *)
module Envs = Set.Make (struct
  type t = (string * int) list

  let compare = compare
end)

(* One plan step plus its loop-invariant cache: the extracted source
   environments, valid while the relation's tuple set is unchanged
   (physical equality — sets are persistent). *)
type cstep = { c_step : Ralg.step; c_cache : (Tuples.t * (string * int) list list) option ref }

type cplan = { c_ir : Ralg.plan; c_steps : cstep array }

let env_sorted env = List.sort (fun (a, _) (b, _) -> compare a b) env

(* Environments of the source's variables, one per matching tuple:
   constants select, duplicate columns equate, wildcards and dead
   columns project away, variables bind (the tuple-level analog of the
   engine's prepared operand). *)
let source_envs (s : Ralg.source) tuples =
  Tuples.fold
    (fun tu acc ->
      let arr = Array.of_list tu in
      let n = Array.length s.Ralg.src_cols in
      let rec go i env =
        if i = n then Some env
        else
          match s.Ralg.src_cols.(i) with
          | Ralg.Cconst (v, _) -> if arr.(i) = v then go (i + 1) env else None
          | Ralg.Cwild -> go (i + 1) env
          | Ralg.Cdup fp -> if arr.(i) = arr.(fp) then go (i + 1) env else None
          | Ralg.Cvar v -> go (i + 1) ((v, arr.(i)) :: env)
      in
      match go 0 [] with
      | Some env -> env_sorted env :: acc
      | None -> acc)
    tuples []
  |> List.sort_uniq compare

(* Merge two sorted environments; [None] on conflicting bindings. *)
let rec merge_envs e1 e2 =
  match (e1, e2) with
  | [], e | e, [] -> Some e
  | (v1, x1) :: r1, (v2, x2) :: r2 ->
    if v1 = v2 then
      if x1 <> x2 then None
      else Option.map (fun m -> (v1, x1) :: m) (merge_envs r1 r2)
    else if v1 < v2 then Option.map (fun m -> (v1, x1) :: m) (merge_envs r1 e2)
    else Option.map (fun m -> (v2, x2) :: m) (merge_envs e1 r2)

let join_envs current senvs =
  Envs.fold
    (fun env acc ->
      List.fold_left
        (fun acc senv ->
          match merge_envs env senv with
          | Some m -> Envs.add m acc
          | None -> acc)
        acc senvs)
    current Envs.empty

(* Drop environments subsumed by some source environment (all source
   variables are bound here, by safety and plan validation). *)
let subtract_envs current senvs =
  Envs.filter
    (fun env -> not (List.exists (List.for_all (fun (v, x) -> List.assoc v env = x)) senvs))
    current

let constrain_envs (c : Ralg.constr) current =
  let holds op a b =
    match op with
    | Ast.Eq -> a = b
    | Ast.Neq -> a <> b
  in
  Envs.filter
    (fun env ->
      match c with
      | Ralg.Cmp_vv { left; op; right } -> holds op (List.assoc left env) (List.assoc right env)
      | Ralg.Cmp_vc { var; op; value; _ } -> holds op (List.assoc var env) value)
    current

let quantify_envs vars current =
  if vars = [] then current
  else Envs.map (fun env -> List.filter (fun (v, _) -> not (List.mem v vars)) env) current

let eval_ir_plan db deltas cplan ~delta_at =
  let current = ref (Envs.singleton []) in
  Array.iteri
    (fun i cst ->
      let st = cst.c_step in
      (match st.Ralg.op with
      | Ralg.Join s | Ralg.Subtract s ->
        let delta_here = delta_at = Some i in
        let tuples = if delta_here then !(Hashtbl.find deltas s.Ralg.src_rel) else !(Hashtbl.find db s.Ralg.src_rel) in
        let senvs =
          if (not delta_here) && s.Ralg.src_hoist then begin
            match !(cst.c_cache) with
            | Some (t, envs) when t == tuples -> envs
            | Some _ | None ->
              let envs = source_envs s tuples in
              cst.c_cache := Some (tuples, envs);
              envs
          end
          else source_envs s tuples
        in
        current :=
          (match st.Ralg.op with
          | Ralg.Join _ -> join_envs !current senvs
          | Ralg.Subtract _ -> subtract_envs !current senvs
          | Ralg.Constrain _ -> assert false)
      | Ralg.Constrain c -> current := constrain_envs c !current);
      current := quantify_envs st.Ralg.quantify !current)
    cplan.c_steps;
  (* Head tuples, positionally (duplicates copy earlier columns). *)
  let cols = cplan.c_ir.Ralg.head.Ralg.hd_cols in
  Envs.fold
    (fun env acc ->
      let arr = Array.make (Array.length cols) 0 in
      Array.iteri
        (fun i col ->
          match col with
          | Ralg.Cvar v -> arr.(i) <- List.assoc v env
          | Ralg.Cdup fp -> arr.(i) <- arr.(fp)
          | Ralg.Cconst (v, _) -> arr.(i) <- v
          | Ralg.Cwild -> assert false)
        cols;
      Array.to_list arr :: acc)
    !current []

let solve_ir ?element_names ?(toggles = Ralg.default_toggles) ?plans (program : Ast.program) ~inputs =
  let res = Resolve.resolve ?element_names program in
  let strata = Stratify.strata program in
  let ir_plans =
    match plans with
    | Some p -> p
    | None ->
      List.map
        (fun (st : Stratify.stratum) ->
          let opt r = Ralg.optimize res ~toggles ~stratum_preds:st.Stratify.preds (Ralg.lower res r) in
          (List.map opt st.Stratify.once_rules, List.map opt st.Stratify.loop_rules))
        strata
  in
  let compile ir = { c_ir = ir; c_steps = Array.map (fun st -> { c_step = st; c_cache = ref None }) ir.Ralg.steps } in
  let cplans = List.map (fun (once, loop) -> (List.map compile once, List.map compile loop)) ir_plans in
  (* Semi-naive driving, as the engine infers it from the plans. *)
  let semi_naive =
    List.exists (fun (_, loop) -> List.exists (fun p -> p.c_ir.Ralg.deltas <> []) loop) cplans
  in
  let db : (string, Tuples.t ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (decl : Ast.rel_decl) -> Hashtbl.add db decl.Ast.rel_name (ref Tuples.empty)) program.Ast.relations;
  List.iter
    (fun (name, tuples) ->
      let slot =
        match Hashtbl.find_opt db name with
        | Some s -> s
        | None -> raise (Resolve.Check_error (Printf.sprintf "unknown input relation %s" name))
      in
      let p = Hashtbl.find res.Resolve.preds name in
      List.iter
        (fun tu ->
          if List.length tu <> Array.length p.Resolve.doms then
            raise (Resolve.Check_error (Printf.sprintf "tuple arity mismatch for %s" name));
          List.iteri
            (fun i v ->
              if v < 0 || v >= Domain.size p.Resolve.doms.(i) then
                raise (Resolve.Check_error (Printf.sprintf "value %d out of range for %s" v name)))
            tu;
          slot := Tuples.add tu !slot)
        tuples)
    inputs;
  let deltas : (string, Tuples.t ref) Hashtbl.t = Hashtbl.create 8 in
  let pendings : (string, Tuples.t ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (st : Stratify.stratum) ->
      if st.Stratify.loop_rules <> [] then
        List.iter
          (fun p ->
            if not (Hashtbl.mem deltas p) then begin
              Hashtbl.add deltas p (ref Tuples.empty);
              Hashtbl.add pendings p (ref Tuples.empty)
            end)
          st.Stratify.preds)
    strata;
  (* Union derived tuples into the head; true if any were new. *)
  let commit cplan derived ~track_delta =
    let slot = Hashtbl.find db cplan.c_ir.Ralg.head.Ralg.hd_rel in
    List.fold_left
      (fun changed tu ->
        if Tuples.mem tu !slot then changed
        else begin
          slot := Tuples.add tu !slot;
          if track_delta then begin
            let pe = Hashtbl.find pendings cplan.c_ir.Ralg.head.Ralg.hd_rel in
            pe := Tuples.add tu !pe
          end;
          true
        end)
      false derived
  in
  List.iter2
    (fun (st : Stratify.stratum) (once, loop) ->
      List.iter (fun cp -> ignore (commit cp (eval_ir_plan db deltas cp ~delta_at:None) ~track_delta:false)) once;
      if loop <> [] then begin
        List.iter
          (fun p ->
            let d = Hashtbl.find deltas p in
            d := !(Hashtbl.find db p))
          st.Stratify.preds;
        let continue = ref true in
        while !continue do
          let changed = ref false in
          List.iter
            (fun cp ->
              if cp.c_ir.Ralg.deltas <> [] then
                List.iter
                  (fun pos ->
                    if commit cp (eval_ir_plan db deltas cp ~delta_at:(Some pos)) ~track_delta:true then
                      changed := true)
                  cp.c_ir.Ralg.deltas
              else if commit cp (eval_ir_plan db deltas cp ~delta_at:None) ~track_delta:true then changed := true)
            loop;
          if semi_naive then begin
            let any = ref false in
            List.iter
              (fun p ->
                let d = Hashtbl.find deltas p and pe = Hashtbl.find pendings p in
                d := !pe;
                pe := Tuples.empty;
                if not (Tuples.is_empty !d) then any := true)
              st.Stratify.preds;
            continue := !any
          end
          else continue := !changed
        done
      end)
    strata cplans;
  { db }
