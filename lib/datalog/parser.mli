(** Recursive-descent parser for the Datalog concrete syntax.

    The accepted grammar (sections in order, all required, possibly
    empty; [#] comments anywhere):

    {v
    DOMAINS
      V 262144 "variable.map"
      H 65536
    RELATIONS
      input  vP0    (variable : V, heap : H)
      output vP     (variable : V, heap : H)
             tmp    (variable : V)             # internal
    RULES
      vP(v, h)   :- vP0(v, h).
      vP(v1, h)  :- assign(v1, v2), vP(v2, h).
      notVT(v,t) :- vET(v, tv), !aT(t, tv).
      refine(v)  :- vT(v, td), vST(v, tc), td != tc.
      who(h, f)  :- hP(h, f, "a.java:57").
    v} *)

type error = { message : string; line : int }

exception Parse_error of error

val parse : ?file:string -> string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error}.  [file] (default
    ["<datalog>"]) is recorded in every rule's {!Ast.pos} so
    diagnostics and [explain] can report [file:line]. *)

val parse_rules : ?file:string -> string -> Ast.rule list
(** Parse a bare RULES body (no section headers) — convenient for
    embedding query snippets, as in §5 of the paper. *)
