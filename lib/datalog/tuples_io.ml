let bad ~path ~line fmt = Solver_error.raise_bad_input ~file:path ~line fmt

(* [schema] is the relation's attribute list as (field name, domain
   size): with it, arity and value-range errors are reported at the
   offending file:line with the field's name, instead of surfacing
   later as an [Invalid_argument] from deep inside the BDD layer. *)
let load_file ?schema path =
  let ic = try open_in path with Sys_error msg -> bad ~path ~line:0 "%s" msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let tuples = ref [] in
      (try
         let line_no = ref 0 in
         while true do
           let line = input_line ic in
           incr line_no;
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           let fields = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
           if fields <> [] then begin
             let tuple =
               List.map
                 (fun s ->
                   match int_of_string_opt s with
                   | Some v -> v
                   | None -> bad ~path ~line:!line_no "not an integer: %s" s)
                 fields
             in
             (match schema with
             | None -> ()
             | Some attrs ->
               let arity = List.length attrs in
               let width = List.length tuple in
               if width <> arity then
                 bad ~path ~line:!line_no "expected %d fields, got %d" arity width;
               List.iter2
                 (fun (fname, dsize) v ->
                   if v < 0 || v >= dsize then
                     bad ~path ~line:!line_no "field %s: value %d out of range [0, %d)" fname v
                       dsize)
                 attrs tuple);
             tuples := tuple :: !tuples
           end
         done
       with End_of_file -> ());
      List.rev !tuples)

(* Atomic: write to a temp file in the same directory, then rename over
   the destination, so an interrupted save leaves either the old file
   or the new one — never a truncated prefix that a later run would
   load as a (silently smaller) relation. *)
let save_file path tuples =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         List.iter
           (fun t ->
             Array.iteri
               (fun i v ->
                 if i > 0 then output_char oc ' ';
                 output_string oc (string_of_int v))
               t;
             output_char oc '\n')
           tuples)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load_inputs ~dir (program : Ast.program) =
  let dom_size name =
    List.find_map
      (fun (d : Ast.domain_decl) -> if d.Ast.dom_name = name then Some d.Ast.dom_size else None)
      program.Ast.domains
  in
  List.filter_map
    (fun (r : Ast.rel_decl) ->
      match r.Ast.rel_kind with
      | Ast.Input ->
        let path = Filename.concat dir (r.Ast.rel_name ^ ".tuples") in
        if Sys.file_exists path then begin
          let schema =
            List.map
              (fun (aname, dname) ->
                match dom_size dname with
                | Some n -> (aname, n)
                | None -> (aname, max_int) (* resolver reports unknown domains *))
              r.Ast.rel_attrs
          in
          Some (r.Ast.rel_name, load_file ~schema path)
        end
        else Some (r.Ast.rel_name, [])
      | Ast.Output | Ast.Internal -> None)
    program.Ast.relations

let save_outputs ~dir (program : Ast.program) tuples_of =
  List.iter
    (fun (r : Ast.rel_decl) ->
      match r.Ast.rel_kind with
      | Ast.Output -> save_file (Filename.concat dir (r.Ast.rel_name ^ ".tuples")) (tuples_of r.Ast.rel_name)
      | Ast.Input | Ast.Internal -> ())
    program.Ast.relations
