type col = Cvar of string | Cdup of int | Cconst of int * string | Cwild

type source = { src_rel : string; src_cols : col array; src_hoist : bool }

type constr =
  | Cmp_vv of { left : string; op : Ast.cmp_op; right : string }
  | Cmp_vc of { var : string; op : Ast.cmp_op; value : int; text : string }

type step_op = Join of source | Subtract of source | Constrain of constr
type step = { op : step_op; quantify : string list }

type head = { hd_rel : string; hd_cols : col array }

type plan = {
  rule : Ast.rule;
  var_doms : (string * string) list;
  binding : (string * int) list;
  steps : step array;
  head : head;
  deltas : int list;
}

exception Plan_error of { message : string; pos : Ast.pos option }

let fail_rule (rule : Ast.rule) fmt =
  Format.kasprintf (fun message -> raise (Plan_error { message; pos = rule.Ast.rule_pos })) fmt

(* Storage layout: the k-th attribute of domain D within a relation is
   stored in physical instance k of D. *)
let storage_slots (res : Resolve.t) name =
  let p = Resolve.pred res name in
  let counts = Hashtbl.create 4 in
  Array.map
    (fun d ->
      let dname = Domain.name d in
      let seen = Option.value (Hashtbl.find_opt counts dname) ~default:0 in
      Hashtbl.replace counts dname (seen + 1);
      (dname, seen))
    p.Resolve.doms

(* Abstract assignment of rule variables to physical instances of their
   domain.  The greedy mode is the paper's attributes-naming
   optimization: most-occurring variables first, each preferring the
   instance most of its storage positions vote for. *)
let assign (res : Resolve.t) ~greedy (rule : Ast.rule) =
  let var_doms = Resolve.var_domains res rule in
  let atoms =
    rule.Ast.head :: List.filter_map (function Ast.Pos a | Ast.Neg a -> Some a | Ast.Cmp _ -> None) rule.Ast.body
  in
  (* Preference votes: var |-> instances of the storage positions it
     occupies. *)
  let prefs : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let occurrences : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let note_var v inst =
    (match Hashtbl.find_opt prefs v with
    | Some l -> l := inst :: !l
    | None -> Hashtbl.add prefs v (ref [ inst ]));
    match Hashtbl.find_opt occurrences v with
    | Some c -> incr c
    | None -> Hashtbl.add occurrences v (ref 1)
  in
  List.iter
    (fun (a : Ast.atom) ->
      let storage = storage_slots res a.Ast.pred in
      List.iteri
        (fun i arg ->
          match arg with
          | Ast.Var v ->
            let _, inst = storage.(i) in
            note_var v inst
          | Ast.Const _ | Ast.Wildcard -> ())
        a.Ast.args)
    atoms;
  (* Variables only mentioned in comparisons already occur in atoms
     (safety), so [prefs] covers every variable. *)
  let assignment : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let used : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 4 in
  let used_of dname =
    match Hashtbl.find_opt used dname with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 4 in
      Hashtbl.add used dname h;
      h
  in
  let take v inst =
    let dname = Domain.name (Hashtbl.find var_doms v) in
    Hashtbl.replace (used_of dname) (string_of_int inst) ();
    Hashtbl.replace assignment v inst
  in
  let is_free v inst =
    let dname = Domain.name (Hashtbl.find var_doms v) in
    not (Hashtbl.mem (used_of dname) (string_of_int inst))
  in
  let all_vars = Ast.vars_of_rule rule in
  let ordered =
    if greedy then
      List.stable_sort
        (fun a b ->
          let ca = !(Hashtbl.find occurrences a) and cb = !(Hashtbl.find occurrences b) in
          if ca <> cb then compare cb ca else compare a b)
        all_vars
    else all_vars
  in
  List.iter
    (fun v ->
      let choice =
        if greedy then begin
          let votes = !(Hashtbl.find prefs v) in
          (* Rank candidate instances by vote count (desc), then index. *)
          let tally = Hashtbl.create 4 in
          List.iter
            (fun i ->
              let c = Option.value (Hashtbl.find_opt tally i) ~default:0 in
              Hashtbl.replace tally i (c + 1))
            votes;
          let candidates =
            List.sort
              (fun (i1, c1) (i2, c2) -> if c1 <> c2 then compare c2 c1 else compare i1 i2)
              (Hashtbl.fold (fun i c acc -> (i, c) :: acc) tally [])
          in
          List.find_opt (fun (i, _) -> is_free v i) candidates |> Option.map fst
        end
        else None
      in
      match choice with
      | Some i -> take v i
      | None ->
        let rec first_free i = if is_free v i then i else first_free (i + 1) in
        take v (first_free 0))
    ordered;
  List.map (fun v -> (v, Hashtbl.find assignment v)) all_vars

(* --- Lowering --- *)

let cols_of_atom (res : Resolve.t) (rule : Ast.rule) ~in_head (a : Ast.atom) =
  let p = Resolve.pred res a.Ast.pred in
  let first_pos : (string, int) Hashtbl.t = Hashtbl.create 4 in
  Array.of_list
    (List.mapi
       (fun i arg ->
         match arg with
         | Ast.Const c -> Cconst (Resolve.const_index p.Resolve.doms.(i) c, c)
         | Ast.Wildcard ->
           if in_head then fail_rule rule "wildcard in head: %a" Ast.pp_rule rule;
           Cwild
         | Ast.Var v -> (
           match Hashtbl.find_opt first_pos v with
           | None ->
             Hashtbl.add first_pos v i;
             Cvar v
           | Some fp -> Cdup fp))
       a.Ast.args)

(* Execution sequence: positive atoms in order, each followed by any
   deferred negations/comparisons that became fully bound. *)
let schedule (rule : Ast.rule) body =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let is_bound_lit lit = List.for_all (fun v -> Hashtbl.mem bound v) (Ast.vars_of_literal lit) in
  let pending = ref [] in
  let seq = ref [] in
  let flush () =
    let rec go () =
      let ready, still = List.partition is_bound_lit !pending in
      if ready <> [] then begin
        pending := still;
        List.iter (fun l -> seq := l :: !seq) ready;
        go ()
      end
    in
    go ()
  in
  List.iter
    (fun lit ->
      match lit with
      | Ast.Pos a ->
        seq := lit :: !seq;
        List.iter (fun v -> Hashtbl.replace bound v ()) (Ast.vars_of_atom a);
        flush ()
      | Ast.Neg _ | Ast.Cmp _ ->
        pending := !pending @ [ lit ];
        flush ())
    body;
  if !pending <> [] then fail_rule rule "rule has unbound negation or comparison: %a" Ast.pp_rule rule;
  List.rev !seq

let step_of_literal (res : Resolve.t) var_doms (rule : Ast.rule) lit =
  let op =
    match lit with
    | Ast.Pos a -> Join { src_rel = a.Ast.pred; src_cols = cols_of_atom res rule ~in_head:false a; src_hoist = false }
    | Ast.Neg a -> Subtract { src_rel = a.Ast.pred; src_cols = cols_of_atom res rule ~in_head:false a; src_hoist = false }
    | Ast.Cmp (l, op, r) -> (
      match (l, r) with
      | Ast.Var a, Ast.Var b -> Constrain (Cmp_vv { left = a; op; right = b })
      | Ast.Var a, Ast.Const c | Ast.Const c, Ast.Var a ->
        let d = Hashtbl.find var_doms a in
        Constrain (Cmp_vc { var = a; op; value = Resolve.const_index d c; text = c })
      | (Ast.Const _ | Ast.Wildcard), (Ast.Const _ | Ast.Wildcard) | Ast.Var _, Ast.Wildcard | Ast.Wildcard, Ast.Var _
        ->
        fail_rule rule "unsupported comparison operands: %a" Ast.pp_rule rule)
  in
  { op; quantify = [] }

(* All projection deferred to the last step (the early-quantification
   pass redistributes it). *)
let defer_quantify (rule : Ast.rule) steps =
  let head_vars = Ast.vars_of_atom rule.Ast.head in
  let nonhead =
    List.sort_uniq compare (List.filter (fun v -> not (List.mem v head_vars)) (Ast.vars_of_rule rule))
  in
  let n = Array.length steps in
  if n = 0 then steps
  else
    Array.mapi (fun i st -> { st with quantify = (if i = n - 1 then nonhead else []) }) steps

let lower (res : Resolve.t) (rule : Ast.rule) =
  let var_doms_tbl = Resolve.var_domains res rule in
  let all_vars = Ast.vars_of_rule rule in
  let var_doms = List.map (fun v -> (v, Domain.name (Hashtbl.find var_doms_tbl v))) all_vars in
  let binding = assign res ~greedy:false rule in
  let seq = schedule rule rule.Ast.body in
  let steps = defer_quantify rule (Array.of_list (List.map (step_of_literal res var_doms_tbl rule) seq)) in
  let hd = { hd_rel = rule.Ast.head.Ast.pred; hd_cols = cols_of_atom res rule ~in_head:true rule.Ast.head } in
  { rule; var_doms; binding; steps; head = hd; deltas = [] }

(* --- Passes --- *)

(* Variables of a step in first-occurrence order — mirrors
   [Ast.vars_of_literal] on the literal the step came from. *)
let step_vars st =
  match st.op with
  | Join s | Subtract s ->
    Array.to_list s.src_cols |> List.filter_map (function Cvar v -> Some v | Cdup _ | Cconst _ | Cwild -> None)
  | Constrain (Cmp_vv { left; right; _ }) -> if left = right then [ left ] else [ left; right ]
  | Constrain (Cmp_vc { var; _ }) -> [ var ]

let pass_naming res plan = { plan with binding = assign res ~greedy:true plan.rule }

(* Greedy subgoal reordering (bddbddb reorders joins): start from the
   most-constrained atom (fewest distinct variables, most constants),
   then repeatedly take the atom sharing the most already-bound
   variables.  Rebuilds the schedule from the rule, so it must run
   before the quantification/delta/hoist passes. *)
let pass_reorder res plan =
  let rule = plan.rule in
  let positives, others = List.partition (function Ast.Pos _ -> true | Ast.Neg _ | Ast.Cmp _ -> false) rule.Ast.body in
  let atom_of = function Ast.Pos a -> a | Ast.Neg _ | Ast.Cmp _ -> assert false in
  let constants a = List.length (List.filter (function Ast.Const _ -> true | _ -> false) (atom_of a).Ast.args) in
  let vars a = Ast.vars_of_atom (atom_of a) in
  let bound_vars : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let score a =
    let vs = vars a in
    let shared = List.length (List.filter (Hashtbl.mem bound_vars) vs) in
    (* More shared bound vars first; then fewer free vars; then more
       constants. *)
    (-shared, List.length vs - shared, -constants a)
  in
  let rec pick acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let best = List.fold_left (fun b a -> if score a < score b then a else b) (List.hd remaining) remaining in
      List.iter (fun v -> Hashtbl.replace bound_vars v ()) (vars best);
      pick (best :: acc) (List.filter (fun x -> x != best) remaining)
  in
  let body = pick [] positives @ others in
  let var_doms_tbl = Resolve.var_domains res rule in
  let seq = schedule rule body in
  let steps = defer_quantify rule (Array.of_list (List.map (step_of_literal res var_doms_tbl rule) seq)) in
  { plan with steps; deltas = [] }

(* Early quantification: project each variable away right after its
   last use (head variables live forever). *)
let pass_pushdown _res plan =
  let head_vars = Ast.vars_of_atom plan.rule.Ast.head in
  let last_use : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri (fun i st -> List.iter (fun v -> Hashtbl.replace last_use v i) (step_vars st)) plan.steps;
  List.iter (fun v -> Hashtbl.replace last_use v max_int) head_vars;
  let steps =
    Array.mapi
      (fun i st ->
        let dying = List.filter (fun v -> Hashtbl.find last_use v = i) (step_vars st) in
        { st with quantify = List.sort_uniq compare dying })
      plan.steps
  in
  { plan with steps }

(* Semi-naive delta rewriting: recursive joins (against the rule's own
   stratum) are each evaluated once per iteration against the tuples
   new since the previous iteration. *)
let pass_semi_naive ~stratum_preds _res plan =
  let deltas =
    List.filter_map
      (fun i ->
        match plan.steps.(i).op with
        | Join s when List.mem s.src_rel stratum_preds -> Some i
        | Join _ | Subtract _ | Constrain _ -> None)
      (List.init (Array.length plan.steps) (fun i -> i))
  in
  { plan with deltas }

(* Loop-invariant hoisting: cache each prepared operand while its
   source relation is unchanged. *)
let pass_hoist _res plan =
  let steps =
    Array.map
      (fun st ->
        match st.op with
        | Join s -> { st with op = Join { s with src_hoist = true } }
        | Subtract s -> { st with op = Subtract { s with src_hoist = true } }
        | Constrain _ -> st)
      plan.steps
  in
  { plan with steps }

type toggles = { naming : bool; reorder : bool; pushdown : bool; semi_naive : bool; hoist : bool }

let default_toggles = { naming = true; reorder = false; pushdown = true; semi_naive = true; hoist = true }

type pass = { pass_name : string; pass_doc : string; pass_on : bool; pass_apply : Resolve.t -> plan -> plan }

let pass_list toggles ~stratum_preds =
  [
    {
      pass_name = "naming";
      pass_doc = "greedy physical-instance assignment minimizing renames";
      pass_on = toggles.naming;
      pass_apply = pass_naming;
    };
    {
      pass_name = "reorder";
      pass_doc = "greedy join reordering, most-constrained atom first";
      pass_on = toggles.reorder;
      pass_apply = pass_reorder;
    };
    {
      pass_name = "pushdown";
      pass_doc = "existentially quantify each variable at its last use";
      pass_on = toggles.pushdown;
      pass_apply = pass_pushdown;
    };
    {
      pass_name = "semi-naive";
      pass_doc = "delta rewriting of joins against the rule's stratum";
      pass_on = toggles.semi_naive;
      pass_apply = pass_semi_naive ~stratum_preds;
    };
    {
      pass_name = "hoist";
      pass_doc = "cache prepared operands while their relation is unchanged";
      pass_on = toggles.hoist;
      pass_apply = pass_hoist;
    };
  ]

(* --- Validation --- *)

let check_plan (res : Resolve.t) plan =
  let fail fmt = fail_rule plan.rule fmt in
  let rule_str = Format.asprintf "%a" Ast.pp_rule plan.rule in
  (* Binding: total over the rule's variables, injective per domain. *)
  let all_vars = Ast.vars_of_rule plan.rule in
  List.iter
    (fun v ->
      if not (List.mem_assoc v plan.binding) then fail "plan for %s: variable %s has no binding" rule_str v;
      if not (List.mem_assoc v plan.var_doms) then fail "plan for %s: variable %s has no domain" rule_str v)
    all_vars;
  let seen : (string * int, string) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (v, inst) ->
      let dname = List.assoc v plan.var_doms in
      (match Hashtbl.find_opt seen (dname, inst) with
      | Some v' when v' <> v -> fail "plan for %s: variables %s and %s share instance %s%d" rule_str v' v dname inst
      | _ -> ());
      Hashtbl.replace seen (dname, inst) v)
    plan.binding;
  let check_cols what rel_name cols ~in_head =
    let p = Resolve.pred res rel_name in
    if Array.length cols <> Array.length p.Resolve.doms then
      fail "plan for %s: %s %s has %d columns, expected %d" rule_str what rel_name (Array.length cols)
        (Array.length p.Resolve.doms);
    Array.iteri
      (fun i col ->
        match col with
        | Cvar v -> if not (List.mem_assoc v plan.binding) then fail "plan for %s: unbound column variable %s" rule_str v
        | Cdup fp ->
          if fp < 0 || fp >= i then fail "plan for %s: bad duplicate back-reference %d at column %d" rule_str fp i;
          (match cols.(fp) with
          | Cvar _ -> ()
          | Cdup _ | Cconst _ | Cwild ->
            fail "plan for %s: duplicate back-reference %d does not hit a variable" rule_str fp)
        | Cconst (v, _) ->
          if v < 0 || v >= Domain.size p.Resolve.doms.(i) then
            fail "plan for %s: constant %d out of range at column %d of %s" rule_str v i rel_name
        | Cwild -> if in_head then fail "plan for %s: wildcard in head" rule_str)
      cols
  in
  Array.iter
    (fun st ->
      match st.op with
      | Join s -> check_cols "source" s.src_rel s.src_cols ~in_head:false
      | Subtract s -> check_cols "negated source" s.src_rel s.src_cols ~in_head:false
      | Constrain _ -> ())
    plan.steps;
  check_cols "head" plan.head.hd_rel plan.head.hd_cols ~in_head:true;
  (* Quantification: exactly the non-head variables, each exactly once,
     never used by a later step. *)
  let head_vars = Ast.vars_of_atom plan.rule.Ast.head in
  let quantified : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i st ->
      List.iter
        (fun v ->
          if List.mem v head_vars then fail "plan for %s: head variable %s quantified at step %d" rule_str v i;
          (match Hashtbl.find_opt quantified v with
          | Some j -> fail "plan for %s: variable %s quantified twice (steps %d and %d)" rule_str v j i
          | None -> ());
          Hashtbl.add quantified v i)
        st.quantify)
    plan.steps;
  Array.iteri
    (fun i st ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt quantified v with
          | Some j when j < i -> fail "plan for %s: variable %s used at step %d after quantification at %d" rule_str v i j
          | _ -> ())
        (step_vars st))
    plan.steps;
  List.iter
    (fun v ->
      if (not (List.mem v head_vars)) && not (Hashtbl.mem quantified v) then
        fail "plan for %s: non-head variable %s is never quantified" rule_str v)
    all_vars;
  (* Deltas index join steps. *)
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length plan.steps then fail "plan for %s: delta index %d out of range" rule_str i;
      match plan.steps.(i).op with
      | Join _ -> ()
      | Subtract _ | Constrain _ -> fail "plan for %s: delta index %d is not a join" rule_str i)
    plan.deltas

let optimize (res : Resolve.t) ?(toggles = default_toggles) ~stratum_preds plan =
  let plan =
    List.fold_left
      (fun plan pass -> if pass.pass_on then pass.pass_apply res plan else plan)
      plan
      (pass_list toggles ~stratum_preds)
  in
  check_plan res plan;
  plan

(* --- Inspection --- *)

let instance_demand (res : Resolve.t) plans =
  let demand : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let note dname n =
    let cur = Option.value (Hashtbl.find_opt demand dname) ~default:1 in
    if n > cur then Hashtbl.replace demand dname n
  in
  List.iter (fun (dname, _) -> note dname 1) res.Resolve.domains;
  Hashtbl.iter
    (fun name _ -> Array.iter (fun (dname, inst) -> note dname (inst + 1)) (storage_slots res name))
    res.Resolve.preds;
  List.iter
    (fun plan -> List.iter (fun (v, inst) -> note (List.assoc v plan.var_doms) (inst + 1)) plan.binding)
    plans;
  demand

(* Renamed positions of one source or the head: first-occurrence
   variable columns whose storage instance differs from the variable's
   binding instance. *)
let renamed_positions (res : Resolve.t) plan rel_name cols =
  let slots = storage_slots res rel_name in
  let n = ref 0 in
  Array.iteri
    (fun i col ->
      match col with
      | Cvar v -> if snd slots.(i) <> List.assoc v plan.binding then incr n
      | Cdup _ | Cconst _ | Cwild -> ())
    cols;
  !n

let rename_stats (res : Resolve.t) plan =
  let positions = ref 0 and replaces = ref 0 in
  let note n =
    positions := !positions + n;
    if n > 0 then incr replaces
  in
  Array.iter
    (fun st ->
      match st.op with
      | Join s | Subtract s -> note (renamed_positions res plan s.src_rel s.src_cols)
      | Constrain _ -> ())
    plan.steps;
  note (renamed_positions res plan plan.head.hd_rel plan.head.hd_cols);
  (!positions, !replaces)

let pp_plan (res : Resolve.t) fmt plan =
  let phys dname inst = Format.sprintf "%s%d" dname inst in
  let pp_cols target rel_name cols =
    (* [target]: where a renamed column goes — for sources the binding
       instance, for the head the storage instance. *)
    let slots = storage_slots res rel_name in
    let parts =
      Array.to_list
        (Array.mapi
           (fun i col ->
             let dname, sto = slots.(i) in
             match col with
             | Cvar v ->
               let b = List.assoc v plan.binding in
               if sto = b then Format.sprintf "%s@%s" v (phys dname sto)
               else if target = `Binding then Format.sprintf "%s@%s->%s" v (phys dname sto) (phys dname b)
               else Format.sprintf "%s@%s->%s" v (phys dname b) (phys dname sto)
             | Cdup fp ->
               let dup_v = match cols.(fp) with Cvar v -> v | _ -> "?" in
               Format.sprintf "%s=#%d@%s" dup_v fp (phys dname sto)
             | Cconst (_, text) -> Format.sprintf "%S@%s" text (phys dname sto)
             | Cwild -> Format.sprintf "_@%s" (phys dname sto))
           cols)
    in
    Format.sprintf "%s(%s)" rel_name (String.concat ", " parts)
  in
  Format.fprintf fmt "rule %a%a@\n" Ast.pp_pos_prefix plan.rule Ast.pp_rule plan.rule;
  if plan.binding <> [] then begin
    let parts =
      List.map
        (fun (v, inst) ->
          let dname = List.assoc v plan.var_doms in
          let bits = Domain.bits (List.assoc dname res.Resolve.domains) in
          Format.sprintf "%s=%s/%db" v (phys dname inst) bits)
        plan.binding
    in
    Format.fprintf fmt "  binding: %s@\n" (String.concat " " parts)
  end;
  Array.iteri
    (fun i st ->
      let opname, body =
        match st.op with
        | Join s -> ("join", pp_cols `Binding s.src_rel s.src_cols)
        | Subtract s -> ("diff", pp_cols `Binding s.src_rel s.src_cols)
        | Constrain (Cmp_vv { left; op; right }) ->
          ("filter", Format.asprintf "%s %a %s" left Ast.pp_cmp_op op right)
        | Constrain (Cmp_vc { var; op; text; _ }) ->
          ("filter", Format.asprintf "%s %a %S" var Ast.pp_cmp_op op text)
      in
      let quant = if st.quantify = [] then "" else Format.sprintf " quantify {%s}" (String.concat "," st.quantify) in
      let delta = if List.mem i plan.deltas then " [delta]" else "" in
      Format.fprintf fmt "  step %d: %-6s %s%s%s@\n" (i + 1) opname body quant delta)
    plan.steps;
  Format.fprintf fmt "  head: %s@\n" (pp_cols `Storage plan.head.hd_rel plan.head.hd_cols);
  let positions, replaces = rename_stats res plan in
  Format.fprintf fmt "  renames: %d positions, %d replace ops@\n" positions replaces
