type pred = { decl : Ast.rel_decl; doms : Domain.t array }

type t = {
  program : Ast.program;
  domains : (string * Domain.t) list;
  preds : (string, pred) Hashtbl.t;
}

exception Check_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Check_error s)) fmt

(* Rule with its source position appended, for error messages. *)
let pp_rule_loc fmt (r : Ast.rule) =
  Ast.pp_rule fmt r;
  match r.Ast.rule_pos with
  | Some pos -> Format.fprintf fmt " (%a)" Ast.pp_pos pos
  | None -> ()

let const_index dom s =
  match Domain.element_index dom s with
  | Some i -> i
  | None -> fail "constant %S is not an element of domain %s" s (Domain.name dom)

let pred t name =
  match Hashtbl.find_opt t.preds name with
  | Some p -> p
  | None -> fail "unknown relation %s" name

(* Computes the domain of every variable of a rule, checking
   consistency along the way. *)
let rule_var_domains preds (r : Ast.rule) =
  let var_doms : (string, Domain.t) Hashtbl.t = Hashtbl.create 8 in
  let bind_var rule v dom =
    match Hashtbl.find_opt var_doms v with
    | None -> Hashtbl.add var_doms v dom
    | Some d ->
      if not (Domain.equal d dom) then
        fail "variable %s used at positions of domains %s and %s in rule: %a" v (Domain.name d) (Domain.name dom)
          pp_rule_loc rule
  in
  let check_atom rule (a : Ast.atom) =
    let p =
      match Hashtbl.find_opt preds a.Ast.pred with
      | Some p -> p
      | None -> fail "unknown relation %s in rule: %a" a.Ast.pred pp_rule_loc rule
    in
    if List.length a.Ast.args <> Array.length p.doms then
      fail "relation %s expects %d arguments, got %d in rule: %a" a.Ast.pred (Array.length p.doms)
        (List.length a.Ast.args) pp_rule_loc rule;
    List.iteri
      (fun i arg ->
        match arg with
        | Ast.Var v -> bind_var rule v p.doms.(i)
        | Ast.Const c -> ignore (const_index p.doms.(i) c)
        | Ast.Wildcard -> ())
      a.Ast.args
  in
  check_atom r r.Ast.head;
  List.iter
    (fun lit ->
      match lit with
      | Ast.Pos a | Ast.Neg a -> check_atom r a
      | Ast.Cmp _ -> ())
    r.Ast.body;
  (* Comparisons second: their variables must already have a domain
     from some atom, which also enforces safety for var-var compares. *)
  List.iter
    (fun lit ->
      match lit with
      | Ast.Cmp (l, _, rt) -> (
        let dom_of_term = function
          | Ast.Var v -> Hashtbl.find_opt var_doms v
          | Ast.Const _ | Ast.Wildcard -> None
        in
        (match (l, rt) with
        | Ast.Wildcard, _ | _, Ast.Wildcard -> fail "wildcard in comparison in rule: %a" pp_rule_loc r
        | Ast.Const _, Ast.Const _ -> fail "comparison between two constants in rule: %a" pp_rule_loc r
        | (Ast.Var _ | Ast.Const _), (Ast.Var _ | Ast.Const _) -> ());
        match (dom_of_term l, dom_of_term rt) with
        | Some dl, Some dr ->
          if not (Domain.equal dl dr) then
            fail "comparison between domains %s and %s in rule: %a" (Domain.name dl) (Domain.name dr) pp_rule_loc r
        | Some d, None -> (
          match rt with
          | Ast.Const c -> ignore (const_index d c)
          | Ast.Var v -> fail "variable %s in comparison is not bound by a positive atom in rule: %a" v pp_rule_loc r
          | Ast.Wildcard -> ())
        | None, Some d -> (
          match l with
          | Ast.Const c -> ignore (const_index d c)
          | Ast.Var v -> fail "variable %s in comparison is not bound by a positive atom in rule: %a" v pp_rule_loc r
          | Ast.Wildcard -> ())
        | None, None -> fail "comparison with no bound variable in rule: %a" pp_rule_loc r)
      | Ast.Pos _ | Ast.Neg _ -> ())
    r.Ast.body;
  var_doms

let check_safety (r : Ast.rule) =
  let positive_vars =
    List.concat_map
      (fun lit ->
        match lit with
        | Ast.Pos a -> Ast.vars_of_atom a
        | Ast.Neg _ | Ast.Cmp _ -> [])
      r.Ast.body
  in
  let bound v = List.mem v positive_vars in
  List.iter
    (fun arg ->
      match arg with
      | Ast.Var v ->
        if not (bound v) then fail "head variable %s is not bound by a positive body atom in rule: %a" v pp_rule_loc r
      | Ast.Wildcard -> fail "wildcard in rule head: %a" pp_rule_loc r
      | Ast.Const _ -> ())
    r.Ast.head.Ast.args;
  List.iter
    (fun lit ->
      match lit with
      | Ast.Neg a ->
        List.iter
          (fun v ->
            if not (bound v) then
              fail "variable %s of negated atom is not bound by a positive body atom in rule: %a" v pp_rule_loc r)
          (Ast.vars_of_atom a)
      | Ast.Cmp _ | Ast.Pos _ -> ())
    r.Ast.body

let resolve ?(element_names = fun _ -> None) (program : Ast.program) =
  (* Domains. *)
  let domains =
    List.map
      (fun (d : Ast.domain_decl) ->
        let names = element_names d.Ast.dom_name in
        (d.Ast.dom_name, Domain.make ?element_names:names ~name:d.Ast.dom_name ~size:d.Ast.dom_size ()))
      program.Ast.domains
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen n then fail "domain %s declared twice" n;
      Hashtbl.add seen n ())
    domains;
  let find_domain n =
    match List.assoc_opt n domains with
    | Some d -> d
    | None -> fail "unknown domain %s" n
  in
  (* Relations. *)
  let preds : (string, pred) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (decl : Ast.rel_decl) ->
      if Hashtbl.mem preds decl.Ast.rel_name then fail "relation %s declared twice" decl.Ast.rel_name;
      let attr_seen = Hashtbl.create 4 in
      List.iter
        (fun (a, _) ->
          if Hashtbl.mem attr_seen a then fail "relation %s has two attributes named %s" decl.Ast.rel_name a;
          Hashtbl.add attr_seen a ())
        decl.Ast.rel_attrs;
      let doms = Array.of_list (List.map (fun (_, d) -> find_domain d) decl.Ast.rel_attrs) in
      Hashtbl.add preds decl.Ast.rel_name { decl; doms })
    program.Ast.relations;
  (* Rules. *)
  List.iter
    (fun (r : Ast.rule) ->
      ignore (rule_var_domains preds r);
      check_safety r;
      (match Hashtbl.find_opt preds r.Ast.head.Ast.pred with
      | Some { decl = { Ast.rel_kind = Ast.Input; _ }; _ } ->
        fail "input relation %s may not appear in a rule head: %a" r.Ast.head.Ast.pred pp_rule_loc r
      | Some _ -> ()
      | None -> fail "unknown relation %s" r.Ast.head.Ast.pred);
      if r.Ast.body = [] then
        List.iter
          (fun arg ->
            match arg with
            | Ast.Const _ -> ()
            | Ast.Var _ | Ast.Wildcard -> fail "fact with non-constant argument: %a" pp_rule_loc r)
          r.Ast.head.Ast.args)
    program.Ast.rules;
  { program; domains; preds }

let var_domains t (r : Ast.rule) = rule_var_domains t.preds r

let term_domain t (r : Ast.rule) v =
  let var_doms = rule_var_domains t.preds r in
  match Hashtbl.find_opt var_doms v with
  | Some d -> d
  | None -> fail "variable %s not found in rule: %a" v pp_rule_loc r
