(** Text format for relation tuples, one tuple per line as
    space-separated ordinals ([#] comments allowed) — the counterpart
    of bddbddb's ".tuples" files, used by the standalone Datalog
    front end. *)

val load_file : ?schema:(string * int) list -> string -> int list list
(** Load a .tuples file.  With [schema] (the relation's attributes as
    [(field name, domain size)] pairs), every line is checked for
    arity and every value for range, and violations raise
    {!Solver_error.Error}[ (Bad_input _)] carrying the file, line and
    field name.  Without [schema] only integer syntax is checked (also
    reported as [Bad_input]).  Unreadable files raise [Bad_input] too,
    and the descriptor is always closed, error or not. *)

val save_file : string -> int array list -> unit
(** Write tuples atomically (temp file + rename): an interrupted save
    leaves the previous file intact, never a truncated one.  The
    descriptor is closed even if a write fails. *)

val load_inputs : dir:string -> Ast.program -> (string * int list list) list
(** For every [input] relation of the program, load ["<dir>/<name>.tuples"]
    if it exists (missing files mean empty relations), validating each
    tuple against the relation's declared arity and domain sizes. *)

val save_outputs : dir:string -> Ast.program -> (string -> int array list) -> unit
(** Write every [output] relation to ["<dir>/<name>.tuples"]. *)
