(** Slow, obviously-correct Datalog evaluator over explicit tuple
    sets — the executable specification of {!Engine}, used for
    differential testing (the paper's semi-naive BDD evaluation was
    "very difficult to get correct"; §6.4 reports a subtle
    incrementalization bug found months later — this is our guard
    against the same).

    Evaluation is naive fixpoint iteration per stratum with
    backtracking joins; exponential in the worst case, fine for test
    programs. *)

type result

val solve :
  ?element_names:(string -> string array option) ->
  Ast.program ->
  inputs:(string * int list list) list ->
  result
(** Raises the same {!Resolve.Check_error} / {!Stratify.Not_stratified}
    as the engine on bad programs. *)

val solve_ir :
  ?element_names:(string -> string array option) ->
  ?toggles:Ralg.toggles ->
  ?plans:(Ralg.plan list * Ralg.plan list) list ->
  Ast.program ->
  inputs:(string * int list list) list ->
  result
(** The reference executor for {!Ralg} query plans: interprets the
    same optimized IR the BDD engine compiles, over explicit
    environment sets, with the same fixpoint driving (once rules,
    delta seeding, per-delta-position passes, pending rotation).

    [plans] supplies the IR directly (e.g. {!Engine.ir_plans}, so both
    executors provably run the very same plans); otherwise plans are
    derived with {!Ralg.lower} and {!Ralg.optimize} under [toggles]
    (default {!Ralg.default_toggles}).  Must agree with [solve] on
    every program — that equivalence is the correctness contract of
    every optimization pass. *)

val tuples : result -> string -> int list list
(** Sorted, deduplicated tuples of a relation after solving. *)
