type options = {
  semi_naive : bool;
  hoist : bool;
  greedy_blocks : bool;
  reorder_joins : bool;
  gc_interval : int;
  node_hint : int;
  cache_bits : int;
  budget : Budget.t option;
}

let default_options =
  {
    semi_naive = true;
    hoist = true;
    greedy_blocks = true;
    reorder_joins = false;
    gc_interval = 256;
    node_hint = 1 lsl 16;
    cache_bits = 18;
    budget = None;
  }

type stats = {
  rule_applications : int;
  iterations : int;
  strata : int;
  peak_live_nodes : int;
  solve_seconds : float;
  gcs : int;
  op_cache : (string * int * int) list;
}

let cache_hit_rate s =
  let h, m = List.fold_left (fun (h, m) (_, h', m') -> (h + h', m + m')) (0, 0) s.op_cache in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

exception Engine_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Engine_error s)) fmt

(* A body atom compiled to its BDD pipeline: select constants, equate
   duplicate-variable positions, quantify dead storage blocks, rename
   surviving storage blocks to the rule variables' blocks.  The result
   is cached while the source relation's version is unchanged (the
   paper's loop-invariant detection). *)
type prepared = {
  p_rel : Relation.t;
  p_selects : Bdd.t; (* conjunction of constant minterms, true if none *)
  p_dup_eqs : Bdd.t list;
  p_away : Bdd.t; (* cube *)
  p_map : Bdd.varmap option;
  p_cache_full : (int * Bdd.t) ref; (* version marker -1 = invalid *)
  p_cache_delta : (int * int * Bdd.t) ref;
      (* (delta BDD handle, gc stamp, result); handle -1 = invalid.  The
         handle is only a valid key while no GC has run since it was
         stored — a collection may free the old delta and let a later
         [mk] reuse its handle for a different function. *)
}

type step_kind = SJoin of prepared | SConstrain of Bdd.t | SSubtract of prepared
type step = { kind : step_kind; project_after : Bdd.t (* cube *) }

type head_spec = { h_rel : Relation.t; h_map : Bdd.varmap option; h_eqs : Bdd.t list; h_consts : Bdd.t }

type plan = {
  p_rule : Ast.rule;
  steps : step array;
  head : head_spec;
  delta_positions : int list; (* SJoin indices whose relation is in the stratum *)
}

type t = {
  res : Resolve.t;
  sp : Space.t;
  opts : options;
  rels : (string, Relation.t) Hashtbl.t;
  deltas : (string, Bdd.t ref) Hashtbl.t;
  pendings : (string, Bdd.t ref) Hashtbl.t;
  strata : Stratify.stratum list;
  mutable plans : (plan list * plan list) list; (* (once, loop) per stratum *)
  mutable plan_consts : Bdd.t list; (* rooted plan-time constants *)
  mutable rule_apps : int;
  mutable stats : stats option;
  mutable budget : Budget.t option;
  mutable cur_iterations : int; (* rounds completed by the current/last [run] *)
}

let space t = t.sp

let domain t name =
  match List.assoc_opt name t.res.Resolve.domains with
  | Some d -> d
  | None -> fail "unknown domain %s" name

let relation t name =
  match Hashtbl.find_opt t.rels name with
  | Some r -> r
  | None -> fail "unknown relation %s" name

let relations t = Hashtbl.fold (fun _ r acc -> r :: acc) t.rels []

(* The program's interface: inputs (including computed inputs a driver
   installed, e.g. IEC/mC) and outputs, in declaration order — the
   relations a persistent store saves.  Internal relations are working
   state of the solve and are excluded. *)
let exported_relations t =
  List.filter_map
    (fun (decl : Ast.rel_decl) ->
      match decl.Ast.rel_kind with
      | Ast.Input | Ast.Output -> Some (relation t decl.Ast.rel_name)
      | Ast.Internal -> None)
    t.res.Resolve.program.Ast.relations

let set_tuples t name tuples =
  let r = relation t name in
  Relation.set_bdd r Bdd.bdd_false;
  List.iter (Relation.add_tuple r) tuples

let add_tuple t name tu = Relation.add_tuple (relation t name) tu

(* --- Planning --- *)

(* Storage layout: the k-th attribute of domain D within a relation is
   stored in physical instance k of D. *)
let storage_instances (decl : Ast.rel_decl) (doms : Domain.t array) =
  let counts = Hashtbl.create 4 in
  Array.mapi
    (fun i _ ->
      let d = doms.(i) in
      let seen = Option.value (Hashtbl.find_opt counts (Domain.name d)) ~default:0 in
      Hashtbl.replace counts (Domain.name d) (seen + 1);
      (d, seen))
    (Array.of_list decl.Ast.rel_attrs)

(* Abstract assignment of rule variables to physical instances of their
   domain.  Returns var -> instance. *)
let assign_instances (res : Resolve.t) ~greedy (rule : Ast.rule) =
  let var_doms = Resolve.var_domains res rule in
  let atoms = rule.Ast.head :: List.filter_map (function Ast.Pos a | Ast.Neg a -> Some a | Ast.Cmp _ -> None) rule.Ast.body in
  (* Preference votes: var |-> instances of the storage positions it
     occupies. *)
  let prefs : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let occurrences : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let note_var v inst =
    (match Hashtbl.find_opt prefs v with
    | Some l -> l := inst :: !l
    | None -> Hashtbl.add prefs v (ref [ inst ]));
    match Hashtbl.find_opt occurrences v with
    | Some c -> incr c
    | None -> Hashtbl.add occurrences v (ref 1)
  in
  List.iter
    (fun (a : Ast.atom) ->
      let p = Resolve.pred res a.Ast.pred in
      let storage = storage_instances p.Resolve.decl p.Resolve.doms in
      List.iteri
        (fun i arg ->
          match arg with
          | Ast.Var v ->
            let _, inst = storage.(i) in
            note_var v inst
          | Ast.Const _ | Ast.Wildcard -> ())
        a.Ast.args)
    atoms;
  (* Variables only mentioned in comparisons already occur in atoms
     (safety), so [prefs] covers every variable. *)
  let assignment : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let used : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 4 in
  let used_of dname =
    match Hashtbl.find_opt used dname with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 4 in
      Hashtbl.add used dname h;
      h
  in
  let take v inst =
    let dname = Domain.name (Hashtbl.find var_doms v) in
    Hashtbl.replace (used_of dname) (string_of_int inst) ();
    Hashtbl.replace assignment v inst
  in
  let is_free v inst =
    let dname = Domain.name (Hashtbl.find var_doms v) in
    not (Hashtbl.mem (used_of dname) (string_of_int inst))
  in
  let all_vars = Ast.vars_of_rule rule in
  let ordered =
    if greedy then
      List.stable_sort
        (fun a b ->
          let ca = !(Hashtbl.find occurrences a) and cb = !(Hashtbl.find occurrences b) in
          if ca <> cb then compare cb ca else compare a b)
        all_vars
    else all_vars
  in
  List.iter
    (fun v ->
      let choice =
        if greedy then begin
          let votes = !(Hashtbl.find prefs v) in
          (* Rank candidate instances by vote count (desc), then index. *)
          let tally = Hashtbl.create 4 in
          List.iter
            (fun i ->
              let c = Option.value (Hashtbl.find_opt tally i) ~default:0 in
              Hashtbl.replace tally i (c + 1))
            votes;
          let candidates =
            List.sort
              (fun (i1, c1) (i2, c2) -> if c1 <> c2 then compare c2 c1 else compare i1 i2)
              (Hashtbl.fold (fun i c acc -> (i, c) :: acc) tally [])
          in
          List.find_opt (fun (i, _) -> is_free v i) candidates |> Option.map fst
        end
        else None
      in
      match choice with
      | Some i -> take v i
      | None ->
        let rec first_free i = if is_free v i then i else first_free (i + 1) in
        take v (first_free 0))
    ordered;
  (assignment, var_doms)

(* Instances needed per domain across the whole program. *)
let instance_demand (res : Resolve.t) ~greedy =
  let demand : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let note dname n =
    let cur = Option.value (Hashtbl.find_opt demand dname) ~default:1 in
    if n > cur then Hashtbl.replace demand dname n
  in
  List.iter (fun (dname, _) -> note dname 1) res.Resolve.domains;
  Hashtbl.iter
    (fun _ (p : Resolve.pred) ->
      let counts = Hashtbl.create 4 in
      Array.iter
        (fun d ->
          let c = Option.value (Hashtbl.find_opt counts (Domain.name d)) ~default:0 in
          Hashtbl.replace counts (Domain.name d) (c + 1);
          note (Domain.name d) (c + 1))
        p.Resolve.doms)
    res.Resolve.preds;
  List.iter
    (fun rule ->
      let assignment, var_doms = assign_instances res ~greedy rule in
      Hashtbl.iter (fun v inst -> note (Domain.name (Hashtbl.find var_doms v)) (inst + 1)) assignment)
    res.Resolve.program.Ast.rules;
  demand

(* --- Concrete plan construction --- *)

let prepared_of_atom t ~var_block (a : Ast.atom) =
  let rel = relation t a.Ast.pred in
  let p = Resolve.pred t.res a.Ast.pred in
  let attrs = Array.of_list (Relation.attrs rel) in
  let man_consts = ref Bdd.bdd_true in
  let dup_eqs = ref [] in
  let away = ref [] in
  let map_pairs = ref [] in
  let first_pos : (string, int) Hashtbl.t = Hashtbl.create 4 in
  List.iteri
    (fun i arg ->
      let blk = attrs.(i).Relation.block in
      match arg with
      | Ast.Const c ->
        let v = Resolve.const_index p.Resolve.doms.(i) c in
        man_consts := Bdd.mk_and (Space.man t.sp) !man_consts (Space.const t.sp blk v);
        away := blk :: !away
      | Ast.Wildcard -> away := blk :: !away
      | Ast.Var v -> (
        match Hashtbl.find_opt first_pos v with
        | None ->
          Hashtbl.add first_pos v i;
          let target = var_block v in
          if target != blk then map_pairs := (blk, target) :: !map_pairs
        | Some fp ->
          dup_eqs := Space.equal_blocks t.sp attrs.(fp).Relation.block blk :: !dup_eqs;
          away := blk :: !away))
    a.Ast.args;
  {
    p_rel = rel;
    p_selects = !man_consts;
    p_dup_eqs = !dup_eqs;
    p_away = Space.cube_of_blocks t.sp !away;
    p_map = (if !map_pairs = [] then None else Some (Space.renaming t.sp !map_pairs));
    p_cache_full = ref (-1, Bdd.bdd_false);
    p_cache_delta = ref (-1, -1, Bdd.bdd_false);
  }

let cmp_bdd t ~var_block ~var_doms (l : Ast.term) op (r : Ast.term) =
  let man = Space.man t.sp in
  let base =
    match (l, r) with
    | Ast.Var a, Ast.Var b -> Space.equal_blocks t.sp (var_block a) (var_block b)
    | Ast.Var a, Ast.Const c | Ast.Const c, Ast.Var a ->
      let d = Hashtbl.find var_doms a in
      Space.const t.sp (var_block a) (Resolve.const_index d c)
    | (Ast.Const _ | Ast.Wildcard), (Ast.Const _ | Ast.Wildcard) | Ast.Var _, Ast.Wildcard | Ast.Wildcard, Ast.Var _ ->
      fail "unsupported comparison operands"
  in
  match op with
  | Ast.Eq -> base
  | Ast.Neq -> Bdd.mk_not man base

let build_plan t ~stratum_preds (rule : Ast.rule) =
  let assignment, var_doms = assign_instances t.res ~greedy:t.opts.greedy_blocks rule in
  let var_block v =
    let d = Hashtbl.find var_doms v in
    Space.instance t.sp d (Hashtbl.find assignment v)
  in
  (* Optional subgoal reordering (bddbddb reorders joins): greedily
     start from the most-constrained atom (fewest distinct variables,
     most constants), then repeatedly take the atom sharing the most
     already-bound variables. *)
  let body =
    if not t.opts.reorder_joins then rule.Ast.body
    else begin
      let positives, others =
        List.partition (function Ast.Pos _ -> true | Ast.Neg _ | Ast.Cmp _ -> false) rule.Ast.body
      in
      let atom_of = function Ast.Pos a -> a | Ast.Neg _ | Ast.Cmp _ -> assert false in
      let constants a = List.length (List.filter (function Ast.Const _ -> true | _ -> false) (atom_of a).Ast.args) in
      let vars a = Ast.vars_of_atom (atom_of a) in
      let bound_vars : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      let score a =
        let vs = vars a in
        let shared = List.length (List.filter (Hashtbl.mem bound_vars) vs) in
        (* More shared bound vars first; then fewer free vars; then more
           constants. *)
        (-shared, List.length vs - shared, -constants a)
      in
      let rec pick acc remaining =
        match remaining with
        | [] -> List.rev acc
        | _ ->
          let best = List.fold_left (fun b a -> if score a < score b then a else b) (List.hd remaining) remaining in
          List.iter (fun v -> Hashtbl.replace bound_vars v ()) (vars best);
          pick (best :: acc) (List.filter (fun x -> x != best) remaining)
      in
      pick [] positives @ others
    end
  in
  (* Execution sequence: positive atoms in order, each followed by any
     deferred negations/comparisons that became fully bound. *)
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let is_bound_lit lit = List.for_all (fun v -> Hashtbl.mem bound v) (Ast.vars_of_literal lit) in
  let pending = ref [] in
  let seq = ref [] in
  let flush () =
    let rec go () =
      let ready, still = List.partition is_bound_lit !pending in
      if ready <> [] then begin
        pending := still;
        List.iter (fun l -> seq := l :: !seq) ready;
        go ()
      end
    in
    go ()
  in
  List.iter
    (fun lit ->
      match lit with
      | Ast.Pos a ->
        seq := lit :: !seq;
        List.iter (fun v -> Hashtbl.replace bound v ()) (Ast.vars_of_atom a);
        flush ()
      | Ast.Neg _ | Ast.Cmp _ ->
        pending := !pending @ [ lit ];
        flush ())
    body;
  if !pending <> [] then fail "rule has unbound negation or comparison: %a" Ast.pp_rule rule;
  let seq = Array.of_list (List.rev !seq) in
  (* Last use per variable over the sequence; head variables live
     forever. *)
  let head_vars = Ast.vars_of_atom rule.Ast.head in
  let last_use : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri (fun i lit -> List.iter (fun v -> Hashtbl.replace last_use v i) (Ast.vars_of_literal lit)) seq;
  List.iter (fun v -> Hashtbl.replace last_use v max_int) head_vars;
  let steps =
    Array.mapi
      (fun i lit ->
        let kind =
          match lit with
          | Ast.Pos a -> SJoin (prepared_of_atom t ~var_block a)
          | Ast.Neg a -> SSubtract (prepared_of_atom t ~var_block a)
          | Ast.Cmp (l, op, r) -> SConstrain (cmp_bdd t ~var_block ~var_doms l op r)
        in
        let dying =
          List.filter (fun v -> Hashtbl.find last_use v = i) (Ast.vars_of_literal lit)
        in
        let dying = List.sort_uniq compare dying in
        { kind; project_after = Space.cube_of_blocks t.sp (List.map var_block dying) })
      seq
  in
  (* Head: rename var blocks to first-position storage, equate duplicate
     positions, select constants. *)
  let head_rel = relation t rule.Ast.head.Ast.pred in
  let head_pred = Resolve.pred t.res rule.Ast.head.Ast.pred in
  let head_attrs = Array.of_list (Relation.attrs head_rel) in
  let h_map_pairs = ref [] in
  let h_eqs = ref [] in
  let h_consts = ref Bdd.bdd_true in
  let first_pos : (string, int) Hashtbl.t = Hashtbl.create 4 in
  List.iteri
    (fun i arg ->
      let blk = head_attrs.(i).Relation.block in
      match arg with
      | Ast.Const c ->
        let v = Resolve.const_index head_pred.Resolve.doms.(i) c in
        h_consts := Bdd.mk_and (Space.man t.sp) !h_consts (Space.const t.sp blk v)
      | Ast.Wildcard -> fail "wildcard in head"
      | Ast.Var v -> (
        match Hashtbl.find_opt first_pos v with
        | None ->
          Hashtbl.add first_pos v i;
          let src = var_block v in
          if src != blk then h_map_pairs := (src, blk) :: !h_map_pairs
        | Some fp -> h_eqs := Space.equal_blocks t.sp head_attrs.(fp).Relation.block blk :: !h_eqs))
    rule.Ast.head.Ast.args;
  let head =
    {
      h_rel = head_rel;
      h_map = (if !h_map_pairs = [] then None else Some (Space.renaming t.sp !h_map_pairs));
      h_eqs = !h_eqs;
      h_consts = !h_consts;
    }
  in
  let delta_positions =
    List.filter_map
      (fun i ->
        match steps.(i).kind with
        | SJoin prep when List.mem (Relation.name prep.p_rel) stratum_preds -> Some i
        | SJoin _ | SConstrain _ | SSubtract _ -> None)
      (List.init (Array.length steps) (fun i -> i))
  in
  (* Gather plan constants for GC rooting. *)
  let consts = ref [ head.h_consts ] in
  List.iter (fun e -> consts := e :: !consts) head.h_eqs;
  Array.iter
    (fun st ->
      consts := st.project_after :: !consts;
      match st.kind with
      | SJoin p | SSubtract p ->
        consts := p.p_selects :: p.p_away :: !consts;
        List.iter (fun e -> consts := e :: !consts) p.p_dup_eqs
      | SConstrain c -> consts := c :: !consts)
    steps;
  t.plan_consts <- !consts @ t.plan_consts;
  { p_rule = rule; steps; head; delta_positions }

(* --- Creation --- *)

let create ?(options = default_options) ?element_names ?domain_order (program : Ast.program) =
  let res = Resolve.resolve ?element_names program in
  let strata = Stratify.strata program in
  let sp = Space.create ~node_hint:options.node_hint ~cache_bits:options.cache_bits () in
  let t =
    {
      res;
      sp;
      opts = options;
      rels = Hashtbl.create 16;
      deltas = Hashtbl.create 8;
      pendings = Hashtbl.create 8;
      strata;
      plans = [];
      plan_consts = [];
      rule_apps = 0;
      stats = None;
      budget = options.budget;
      cur_iterations = 0;
    }
  in
  Bdd.set_budget (Space.man sp) options.budget;
  (* Physical blocks: one interleaved group per domain. *)
  let demand = instance_demand res ~greedy:options.greedy_blocks in
  let order =
    (* Explicit argument wins, then the program's .bddvarorder
       directive, then declaration order. *)
    let domain_order =
      match domain_order with
      | Some _ -> domain_order
      | None -> program.Ast.var_order
    in
    match domain_order with
    | None -> List.map fst res.Resolve.domains
    | Some names ->
      List.iter (fun n -> if not (List.mem_assoc n res.Resolve.domains) then fail "domain_order: unknown domain %s" n) names;
      let missing = List.filter (fun (n, _) -> not (List.mem n names)) res.Resolve.domains in
      names @ List.map fst missing
  in
  List.iter
    (fun dname ->
      let d = List.assoc dname res.Resolve.domains in
      let n = Option.value (Hashtbl.find_opt demand dname) ~default:1 in
      ignore (Space.alloc_interleaved sp d n))
    order;
  (* Relations. *)
  List.iter
    (fun (decl : Ast.rel_decl) ->
      let p = Resolve.pred res decl.Ast.rel_name in
      let storage = storage_instances decl p.Resolve.doms in
      let attrs =
        List.mapi
          (fun i (aname, _) ->
            let d, inst = storage.(i) in
            { Relation.attr_name = aname; block = Space.instance sp d inst })
          decl.Ast.rel_attrs
      in
      Hashtbl.add t.rels decl.Ast.rel_name (Relation.make sp ~name:decl.Ast.rel_name attrs))
    program.Ast.relations;
  (* Delta/pending accumulators for recursive predicates. *)
  List.iter
    (fun (st : Stratify.stratum) ->
      if st.Stratify.loop_rules <> [] then
        List.iter
          (fun p ->
            if not (Hashtbl.mem t.deltas p) then begin
              let d = ref Bdd.bdd_false and pe = ref Bdd.bdd_false in
              Bdd.add_root (Space.man sp) d;
              Bdd.add_root (Space.man sp) pe;
              Hashtbl.add t.deltas p d;
              Hashtbl.add t.pendings p pe
            end)
          st.Stratify.preds)
    strata;
  (* Plans. *)
  t.plans <-
    List.map
      (fun (st : Stratify.stratum) ->
        ( List.map (build_plan t ~stratum_preds:st.Stratify.preds) st.Stratify.once_rules,
          List.map (build_plan t ~stratum_preds:st.Stratify.preds) st.Stratify.loop_rules ))
      strata;
  (* Root plan constants and prepared caches. *)
  let full_refs = ref [] in
  let delta_refs = ref [] in
  List.iter
    (fun (once, loop) ->
      List.iter
        (fun plan ->
          Array.iter
            (fun stp ->
              match stp.kind with
              | SJoin p | SSubtract p ->
                full_refs := p.p_cache_full :: !full_refs;
                delta_refs := p.p_cache_delta :: !delta_refs
              | SConstrain _ -> ())
            plan.steps)
        (once @ loop))
    t.plans;
  Bdd.add_root_fn (Space.man sp) (fun () ->
      t.plan_consts
      @ List.map (fun r -> snd !r) !full_refs
      @ List.map
          (fun r ->
            let _, _, b = !r in
            b)
          !delta_refs);
  t

let parse_and_create ?options ?element_names ?domain_order src =
  create ?options ?element_names ?domain_order (Parser.parse src)

(* --- Evaluation --- *)

let prepare t prep ~delta =
  let man = Space.man t.sp in
  let compute source_bdd =
    let b = ref source_bdd in
    if prep.p_selects <> Bdd.bdd_true then b := Bdd.mk_and man !b prep.p_selects;
    List.iter (fun eq -> b := Bdd.mk_and man !b eq) prep.p_dup_eqs;
    if prep.p_away <> Bdd.bdd_true then b := Bdd.exist man ~cube:prep.p_away !b;
    (match prep.p_map with
    | Some map -> b := Bdd.replace man map !b
    | None -> ());
    !b
  in
  if delta then begin
    (* Deltas have no version counter; key the cache on the delta BDD
       handle itself (stable within an iteration because the delta ref
       only changes between iterations), guarded by the GC stamp since
       a collection can free the old delta and reuse its handle. *)
    let d = !(Hashtbl.find t.deltas (Relation.name prep.p_rel)) in
    let handle = (d : Bdd.t :> int) in
    let gcs = Bdd.gc_count man in
    let ch, cgc, cb = !(prep.p_cache_delta) in
    if t.opts.hoist && ch = handle && cgc = gcs then cb
    else begin
      let b = compute d in
      prep.p_cache_delta := (handle, gcs, b);
      b
    end
  end
  else begin
    let version = Relation.version prep.p_rel in
    let cached_version, cached = !(prep.p_cache_full) in
    if t.opts.hoist && cached_version = version then cached
    else begin
      let b = compute (Relation.bdd prep.p_rel) in
      prep.p_cache_full := (version, b);
      b
    end
  end

let eval_plan t plan ~delta_at =
  let man = Space.man t.sp in
  let current = ref Bdd.bdd_true in
  let started = ref false in
  let i = ref 0 in
  let n = Array.length plan.steps in
  while !i < n && (not !started || !current <> Bdd.bdd_false) do
    let stp = plan.steps.(!i) in
    (match stp.kind with
    | SJoin prep ->
      let g = prepare t prep ~delta:(delta_at = Some !i) in
      if !started then current := Bdd.relprod man ~cube:stp.project_after !current g
      else begin
        current := Bdd.exist man ~cube:stp.project_after g;
        started := true
      end
    | SConstrain c ->
      current := Bdd.mk_and man !current c;
      current := Bdd.exist man ~cube:stp.project_after !current
    | SSubtract prep ->
      let g = prepare t prep ~delta:false in
      current := Bdd.mk_diff man !current g;
      current := Bdd.exist man ~cube:stp.project_after !current);
    incr i
  done;
  if !started && !current = Bdd.bdd_false then Bdd.bdd_false
  else begin
    let b = ref !current in
    (match plan.head.h_map with
    | Some map -> b := Bdd.replace man map !b
    | None -> ());
    List.iter (fun eq -> b := Bdd.mk_and man !b eq) plan.head.h_eqs;
    if plan.head.h_consts <> Bdd.bdd_true then b := Bdd.mk_and man !b plan.head.h_consts;
    !b
  end

let set_budget t b =
  t.budget <- b;
  Bdd.set_budget (Space.man t.sp) b

(* Cooperative cancellation/deadline point between rule applications.
   The node-count and allocation limits are enforced inside [Bdd.mk]
   itself (amortized); here we only poll the flag and the clock, which
   a long cache-hit-heavy stretch would otherwise never reach. *)
let check_budget t =
  match t.budget with
  | None -> ()
  | Some b -> (
    match Budget.check_interrupt b with
    | Some reason -> raise (Bdd.Limit_exceeded reason)
    | None -> ())

let maybe_gc t =
  t.rule_apps <- t.rule_apps + 1;
  check_budget t;
  if t.opts.gc_interval > 0 && t.rule_apps mod t.opts.gc_interval = 0 then Bdd.gc (Space.man t.sp)

(* Union the result into the head; returns whether new tuples arrived. *)
let commit t plan result ~track_delta =
  let man = Space.man t.sp in
  let head = plan.head.h_rel in
  let fresh = Bdd.mk_diff man result (Relation.bdd head) in
  if fresh = Bdd.bdd_false then false
  else begin
    Relation.set_bdd head (Bdd.mk_or man (Relation.bdd head) fresh);
    if track_delta then begin
      let p = Hashtbl.find t.pendings (Relation.name head) in
      p := Bdd.mk_or man !p fresh
    end;
    true
  end

let run t =
  let t0 = Unix.gettimeofday () in
  let man = Space.man t.sp in
  t.cur_iterations <- 0;
  (* A previous run may have been aborted mid-round, leaving tuples in
     the pending accumulators.  Relations themselves are monotone (every
     commit unions into the head), so clearing the pendings and
     re-seeding deltas from the full relations below makes [run]
     restartable: it re-converges to the same fixpoint. *)
  Hashtbl.iter (fun _ pe -> pe := Bdd.bdd_false) t.pendings;
  let iterations = ref 0 in
  List.iter2
    (fun (st : Stratify.stratum) (once, loop) ->
      List.iter
        (fun plan ->
          let b = eval_plan t plan ~delta_at:None in
          ignore (commit t plan b ~track_delta:false);
          maybe_gc t)
        once;
      if loop <> [] then begin
        (* Seed deltas with current contents. *)
        List.iter
          (fun p ->
            let d = Hashtbl.find t.deltas p in
            d := Relation.bdd (relation t p))
          st.Stratify.preds;
        let continue = ref true in
        while !continue do
          incr iterations;
          t.cur_iterations <- !iterations;
          (match t.budget with
          | None -> ()
          | Some b -> (
            match Budget.check_iterations b ~iterations:!iterations with
            | Some reason -> raise (Bdd.Limit_exceeded reason)
            | None -> ()));
          let changed = ref false in
          List.iter
            (fun plan ->
              if t.opts.semi_naive && plan.delta_positions <> [] then
                List.iter
                  (fun pos ->
                    let b = eval_plan t plan ~delta_at:(Some pos) in
                    if commit t plan b ~track_delta:true then changed := true;
                    maybe_gc t)
                  plan.delta_positions
              else begin
                let b = eval_plan t plan ~delta_at:None in
                if commit t plan b ~track_delta:true then changed := true;
                maybe_gc t
              end)
            loop;
          if t.opts.semi_naive then begin
            let any = ref false in
            List.iter
              (fun p ->
                let d = Hashtbl.find t.deltas p and pe = Hashtbl.find t.pendings p in
                d := !pe;
                pe := Bdd.bdd_false;
                if !d <> Bdd.bdd_false then any := true)
              st.Stratify.preds;
            continue := !any
          end
          else continue := !changed
        done
      end)
    t.strata t.plans;
  let s =
    {
      rule_applications = t.rule_apps;
      iterations = !iterations;
      strata = List.length t.strata;
      peak_live_nodes = Bdd.peak_live_nodes man;
      solve_seconds = Unix.gettimeofday () -. t0;
      gcs = Bdd.gc_count man;
      op_cache = Bdd.cache_stats_by_class man;
    }
  in
  t.stats <- Some s;
  s

let solve t =
  match run t with
  | s -> Ok s
  | exception Bdd.Limit_exceeded reason ->
    Error
      (Solver_error.Budget_exhausted
         {
           Solver_error.reason;
           partial_iterations = t.cur_iterations;
           live_nodes = Bdd.live_nodes (Space.man t.sp);
         })
  | exception Engine_error msg -> Error (Solver_error.Internal msg)

let last_stats t = t.stats
