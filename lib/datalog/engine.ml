type options = {
  semi_naive : bool;
  hoist : bool;
  greedy_blocks : bool;
  reorder_joins : bool;
  pushdown : bool;
  gc_interval : int;
  node_hint : int;
  cache_bits : int;
  budget : Budget.t option;
  page_bits : int option; (* arena page size override, log2 slots *)
  mem_cap_bytes : int option; (* resident node-page byte cap; spill past it *)
  spill_path : string option; (* arena spill file (default: temp file) *)
  gc_mode : Bdd.gc_mode option; (* default: Space.create's Compact *)
}

let default_options =
  {
    semi_naive = true;
    hoist = true;
    greedy_blocks = true;
    reorder_joins = false;
    pushdown = true;
    gc_interval = 256;
    node_hint = 1 lsl 16;
    cache_bits = 18;
    budget = None;
    page_bits = None;
    mem_cap_bytes = None;
    spill_path = None;
    gc_mode = None;
  }

let toggles_of_options o =
  {
    Ralg.naming = o.greedy_blocks;
    reorder = o.reorder_joins;
    pushdown = o.pushdown;
    semi_naive = o.semi_naive;
    hoist = o.hoist;
  }

type rule_stat = {
  rs_rule : Ast.rule;
  rs_applications : int;
  rs_seconds : float;
  rs_cache_lookups : int;
}

type stats = {
  rule_applications : int;
  iterations : int;
  strata : int;
  peak_live_nodes : int;
  solve_seconds : float;
  gcs : int;
  op_cache : (string * int * int) list;
  rule_stats : rule_stat list;
  arena : Bdd.arena_stats; (* pager counters at solve end *)
}

let cache_hit_rate s =
  let h, m = List.fold_left (fun (h, m) (_, h', m') -> (h + h', m + m')) (0, 0) s.op_cache in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

exception Engine_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Engine_error s)) fmt

(* A plan source compiled to its BDD pipeline: select constants, equate
   duplicate-variable positions, quantify dead storage blocks, rename
   surviving storage blocks to the rule variables' blocks.  When the
   source is marked hoistable, the result is cached while the relation's
   version is unchanged (the paper's loop-invariant detection). *)
type prepared = {
  p_rel : Relation.t;
  mutable p_selects : Bdd.t; (* conjunction of constant minterms, true if none *)
  mutable p_dup_eqs : Bdd.t list;
  mutable p_away : Bdd.t; (* cube *)
  p_map : Bdd.varmap option;
  p_hoist : bool;
  p_cache_full : (int * Bdd.t) ref; (* version marker -1 = invalid *)
  p_cache_delta : (int * int * Bdd.t) ref;
      (* (delta BDD handle, gc stamp, result); handle -1 = invalid.  The
         handle is only a valid key while no GC has run since it was
         stored — a collection may free the old delta and let a later
         [mk] reuse its handle for a different function. *)
}

type step_kind = SJoin of prepared | SConstrain of Bdd.t | SSubtract of prepared
type step = { mutable kind : step_kind; mutable project_after : Bdd.t (* cube *) }

type head_spec = {
  h_rel : Relation.t;
  h_map : Bdd.varmap option;
  mutable h_eqs : Bdd.t list;
  mutable h_consts : Bdd.t;
}

(* A compiled plan: the symbolic {!Ralg.plan} plus its BDD realisation
   and cumulative per-rule evaluation counters. *)
type plan = {
  p_ir : Ralg.plan;
  steps : step array;
  head : head_spec;
  delta_positions : int list; (* = p_ir.deltas: SJoin indices evaluated semi-naively *)
  mutable ev_applications : int;
  mutable ev_seconds : float;
  mutable ev_lookups : int;
}

type t = {
  res : Resolve.t;
  sp : Space.t;
  opts : options;
  ir_plans : (Ralg.plan list * Ralg.plan list) list; (* (once, loop) per stratum *)
  rels : (string, Relation.t) Hashtbl.t;
  deltas : (string, Bdd.t ref) Hashtbl.t;
  pendings : (string, Bdd.t ref) Hashtbl.t;
  strata : Stratify.stratum list;
  mutable plans : (plan list * plan list) list; (* compiled ir_plans *)
  mutable plan_consts : Bdd.t list; (* rooted plan-time constants *)
  mutable rule_apps : int;
  mutable stats : stats option;
  mutable budget : Budget.t option;
  mutable gc_threshold : int;
      (* capped runs only (0 = off): collect whenever the node table
         outgrows this many bytes.  Starts at the memory cap — while
         live data fits, collections keep the table resident and the
         pager idle; once live data itself exceeds the cap, the
         threshold backs off to twice the post-collection size so the
         solver pages rather than collecting after every rule. *)
  mutable cur_iterations : int; (* rounds completed by the current/last [run] *)
  incr_fresh : (string, Bdd.t) Hashtbl.t;
      (* per-relation union of tuples that are new this run — seeded
         with the external input deltas by [run_incremental] and grown
         by every commit while [track_fresh] is on.  Downstream strata
         read it to decide which body positions changed. *)
  mutable track_fresh : bool;
}

let space t = t.sp
let ir_plans t = t.ir_plans

let domain t name =
  match List.assoc_opt name t.res.Resolve.domains with
  | Some d -> d
  | None -> fail "unknown domain %s" name

let relation t name =
  match Hashtbl.find_opt t.rels name with
  | Some r -> r
  | None -> fail "unknown relation %s" name

let relations t = Hashtbl.fold (fun _ r acc -> r :: acc) t.rels []

(* The program's interface: inputs (including computed inputs a driver
   installed, e.g. IEC/mC) and outputs, in declaration order — the
   relations a persistent store saves.  Internal relations are working
   state of the solve and are excluded. *)
let exported_relations t =
  List.filter_map
    (fun (decl : Ast.rel_decl) ->
      match decl.Ast.rel_kind with
      | Ast.Input | Ast.Output -> Some (relation t decl.Ast.rel_name)
      | Ast.Internal -> None)
    t.res.Resolve.program.Ast.relations

(* Every declared relation, internals included, in declaration order.
   An update-capable store saves these: an incremental re-solve needs
   the previous run's internal working relations (e.g. [assign]) as its
   starting point, not just the interface. *)
let declared_relations t =
  List.map (fun (decl : Ast.rel_decl) -> relation t decl.Ast.rel_name) t.res.Resolve.program.Ast.relations

let input_relations t =
  List.filter_map
    (fun (decl : Ast.rel_decl) ->
      match decl.Ast.rel_kind with
      | Ast.Input -> Some (relation t decl.Ast.rel_name)
      | Ast.Output | Ast.Internal -> None)
    t.res.Resolve.program.Ast.relations

(* Relations read under negation (subtracted) by some plan.  Additions
   to them can retract derived facts, so an incremental driver must
   fall back to a cold solve when any of these changed. *)
let negated_relations t =
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (once, loop) ->
      List.iter
        (fun (ir : Ralg.plan) ->
          Array.iter
            (fun (st : Ralg.step) ->
              match st.Ralg.op with
              | Ralg.Subtract s -> Hashtbl.replace seen s.Ralg.src_rel ()
              | Ralg.Join _ | Ralg.Constrain _ -> ())
            ir.Ralg.steps)
        (once @ loop))
    t.ir_plans;
  Hashtbl.fold (fun name () acc -> name :: acc) seen []

let set_tuples t name tuples =
  let r = relation t name in
  Relation.set_bdd r Bdd.bdd_false;
  Relation.set_tuples r tuples

let add_tuple t name tu = Relation.add_tuple (relation t name) tu

(* --- Compilation: Ralg plans to BDD pipelines --- *)

let var_block t (ir : Ralg.plan) v =
  let dname = List.assoc v ir.Ralg.var_doms in
  let d = List.assoc dname t.res.Resolve.domains in
  Space.instance t.sp d (List.assoc v ir.Ralg.binding)

let compile_source t (ir : Ralg.plan) (s : Ralg.source) =
  let rel = relation t s.Ralg.src_rel in
  let attrs = Array.of_list (Relation.attrs rel) in
  let man_consts = ref Bdd.bdd_true in
  let dup_eqs = ref [] in
  let away = ref [] in
  let map_pairs = ref [] in
  Array.iteri
    (fun i col ->
      let blk = attrs.(i).Relation.block in
      match col with
      | Ralg.Cconst (v, _) ->
        man_consts := Bdd.mk_and (Space.man t.sp) !man_consts (Space.const t.sp blk v);
        away := blk :: !away
      | Ralg.Cwild -> away := blk :: !away
      | Ralg.Cvar v ->
        let target = var_block t ir v in
        if target != blk then map_pairs := (blk, target) :: !map_pairs
      | Ralg.Cdup fp ->
        dup_eqs := Space.equal_blocks t.sp attrs.(fp).Relation.block blk :: !dup_eqs;
        away := blk :: !away)
    s.Ralg.src_cols;
  {
    p_rel = rel;
    p_selects = !man_consts;
    p_dup_eqs = !dup_eqs;
    p_away = Space.cube_of_blocks t.sp !away;
    p_map = (if !map_pairs = [] then None else Some (Space.renaming t.sp !map_pairs));
    p_hoist = s.Ralg.src_hoist;
    p_cache_full = ref (-1, Bdd.bdd_false);
    p_cache_delta = ref (-1, -1, Bdd.bdd_false);
  }

let compile_constr t (ir : Ralg.plan) (c : Ralg.constr) =
  let man = Space.man t.sp in
  match c with
  | Ralg.Cmp_vv { left; op; right } -> (
    let base = Space.equal_blocks t.sp (var_block t ir left) (var_block t ir right) in
    match op with
    | Ast.Eq -> base
    | Ast.Neq -> Bdd.mk_not man base)
  | Ralg.Cmp_vc { var; op; value; _ } -> (
    let base = Space.const t.sp (var_block t ir var) value in
    match op with
    | Ast.Eq -> base
    | Ast.Neq -> Bdd.mk_not man base)

let compile_plan t (ir : Ralg.plan) =
  let steps =
    Array.map
      (fun (st : Ralg.step) ->
        let kind =
          match st.Ralg.op with
          | Ralg.Join s -> SJoin (compile_source t ir s)
          | Ralg.Subtract s -> SSubtract (compile_source t ir s)
          | Ralg.Constrain c -> SConstrain (compile_constr t ir c)
        in
        { kind; project_after = Space.cube_of_blocks t.sp (List.map (var_block t ir) st.Ralg.quantify) })
      ir.Ralg.steps
  in
  (* Head: rename var blocks to first-position storage, equate duplicate
     positions, select constants. *)
  let head_rel = relation t ir.Ralg.head.Ralg.hd_rel in
  let head_attrs = Array.of_list (Relation.attrs head_rel) in
  let h_map_pairs = ref [] in
  let h_eqs = ref [] in
  let h_consts = ref Bdd.bdd_true in
  Array.iteri
    (fun i col ->
      let blk = head_attrs.(i).Relation.block in
      match col with
      | Ralg.Cconst (v, _) -> h_consts := Bdd.mk_and (Space.man t.sp) !h_consts (Space.const t.sp blk v)
      | Ralg.Cwild -> fail "wildcard in head"
      | Ralg.Cvar v ->
        let src = var_block t ir v in
        if src != blk then h_map_pairs := (src, blk) :: !h_map_pairs
      | Ralg.Cdup fp -> h_eqs := Space.equal_blocks t.sp head_attrs.(fp).Relation.block blk :: !h_eqs)
    ir.Ralg.head.Ralg.hd_cols;
  let head =
    {
      h_rel = head_rel;
      h_map = (if !h_map_pairs = [] then None else Some (Space.renaming t.sp !h_map_pairs));
      h_eqs = !h_eqs;
      h_consts = !h_consts;
    }
  in
  (* Gather plan constants for GC rooting. *)
  let consts = ref [ head.h_consts ] in
  List.iter (fun e -> consts := e :: !consts) head.h_eqs;
  Array.iter
    (fun st ->
      consts := st.project_after :: !consts;
      match st.kind with
      | SJoin p | SSubtract p ->
        consts := p.p_selects :: p.p_away :: !consts;
        List.iter (fun e -> consts := e :: !consts) p.p_dup_eqs
      | SConstrain c -> consts := c :: !consts)
    steps;
  t.plan_consts <- !consts @ t.plan_consts;
  { p_ir = ir; steps; head; delta_positions = ir.Ralg.deltas; ev_applications = 0; ev_seconds = 0.0; ev_lookups = 0 }

(* --- Creation --- *)

let create ?(options = default_options) ?element_names ?domain_order (program : Ast.program) =
  let res = Resolve.resolve ?element_names program in
  let strata = Stratify.strata program in
  (* Lower and optimize every rule first — purely symbolic, no BDD
     work, so plan-time failures surface before any allocation. *)
  let toggles = toggles_of_options options in
  let ir_plans =
    try
      List.map
        (fun (st : Stratify.stratum) ->
          let opt r = Ralg.optimize res ~toggles ~stratum_preds:st.Stratify.preds (Ralg.lower res r) in
          (List.map opt st.Stratify.once_rules, List.map opt st.Stratify.loop_rules))
        strata
    with Ralg.Plan_error { message; pos } -> (
      match pos with
      | Some p -> fail "%a: %s" Ast.pp_pos p message
      | None -> fail "%s" message)
  in
  let sp =
    Space.create ~node_hint:options.node_hint ~cache_bits:options.cache_bits ?page_bits:options.page_bits
      ?mem_cap_bytes:options.mem_cap_bytes ?spill_path:options.spill_path ?gc_mode:options.gc_mode ()
  in
  let t =
    {
      res;
      sp;
      opts = options;
      ir_plans;
      rels = Hashtbl.create 16;
      deltas = Hashtbl.create 8;
      pendings = Hashtbl.create 8;
      strata;
      plans = [];
      plan_consts = [];
      rule_apps = 0;
      stats = None;
      budget = options.budget;
      gc_threshold = Option.value options.mem_cap_bytes ~default:0;
      cur_iterations = 0;
      incr_fresh = Hashtbl.create 8;
      track_fresh = false;
    }
  in
  Bdd.set_budget (Space.man sp) options.budget;
  (* Physical blocks: one interleaved group per domain, sized by the
     demand of the relations' storage layouts and the plans' bindings. *)
  let demand = Ralg.instance_demand res (List.concat_map (fun (once, loop) -> once @ loop) ir_plans) in
  let order =
    (* Explicit argument wins, then the program's .bddvarorder
       directive, then declaration order. *)
    let domain_order =
      match domain_order with
      | Some _ -> domain_order
      | None -> program.Ast.var_order
    in
    match domain_order with
    | None -> List.map fst res.Resolve.domains
    | Some names ->
      List.iter (fun n -> if not (List.mem_assoc n res.Resolve.domains) then fail "domain_order: unknown domain %s" n) names;
      let missing = List.filter (fun (n, _) -> not (List.mem n names)) res.Resolve.domains in
      names @ List.map fst missing
  in
  List.iter
    (fun dname ->
      let d = List.assoc dname res.Resolve.domains in
      let n = Option.value (Hashtbl.find_opt demand dname) ~default:1 in
      ignore (Space.alloc_interleaved sp d n))
    order;
  (* Relations. *)
  List.iter
    (fun (decl : Ast.rel_decl) ->
      let p = Resolve.pred res decl.Ast.rel_name in
      let slots = Ralg.storage_slots res decl.Ast.rel_name in
      let attrs =
        List.mapi
          (fun i (aname, _) ->
            let _, inst = slots.(i) in
            { Relation.attr_name = aname; block = Space.instance sp p.Resolve.doms.(i) inst })
          decl.Ast.rel_attrs
      in
      Hashtbl.add t.rels decl.Ast.rel_name (Relation.make sp ~name:decl.Ast.rel_name attrs))
    program.Ast.relations;
  (* Delta/pending accumulators for recursive predicates. *)
  List.iter
    (fun (st : Stratify.stratum) ->
      if st.Stratify.loop_rules <> [] then
        List.iter
          (fun p ->
            if not (Hashtbl.mem t.deltas p) then begin
              let d = ref Bdd.bdd_false and pe = ref Bdd.bdd_false in
              Bdd.add_root (Space.man sp) d;
              Bdd.add_root (Space.man sp) pe;
              Hashtbl.add t.deltas p d;
              Hashtbl.add t.pendings p pe
            end)
          st.Stratify.preds)
    strata;
  (* Compile the IR plans to BDD pipelines. *)
  t.plans <- List.map (fun (once, loop) -> (List.map (compile_plan t) once, List.map (compile_plan t) loop)) ir_plans;
  (* Root plan constants and prepared caches. *)
  let full_refs = ref [] in
  let delta_refs = ref [] in
  List.iter
    (fun (once, loop) ->
      List.iter
        (fun plan ->
          Array.iter
            (fun stp ->
              match stp.kind with
              | SJoin p | SSubtract p ->
                full_refs := p.p_cache_full :: !full_refs;
                delta_refs := p.p_cache_delta :: !delta_refs
              | SConstrain _ -> ())
            plan.steps)
        (once @ loop))
    t.plans;
  Bdd.add_root_fn (Space.man sp) (fun () ->
      t.plan_consts
      @ Hashtbl.fold (fun _ b acc -> b :: acc) t.incr_fresh []
      @ List.map (fun r -> snd !r) !full_refs
      @ List.map
          (fun r ->
            let _, _, b = !r in
            b)
          !delta_refs);
  (* Compacting collections renumber every surviving node.  The root
     function above only marks; this hook rewrites every handle the
     engine stores outside registered refs.  The delta cache keys on a
     pre-GC handle, so it is invalidated rather than remapped (its
     gc-stamp guard would reject it anyway). *)
  Bdd.on_remap (Space.man sp) (fun mapf ->
      t.plan_consts <- List.map mapf t.plan_consts;
      let fresh' = Hashtbl.fold (fun k b acc -> (k, mapf b) :: acc) t.incr_fresh [] in
      List.iter (fun (k, b) -> Hashtbl.replace t.incr_fresh k b) fresh';
      let remap_prepared p =
        p.p_selects <- mapf p.p_selects;
        p.p_dup_eqs <- List.map mapf p.p_dup_eqs;
        p.p_away <- mapf p.p_away;
        (let ver, b = !(p.p_cache_full) in
         if ver >= 0 then p.p_cache_full := (ver, mapf b));
        p.p_cache_delta := (-1, -1, Bdd.bdd_false)
      in
      List.iter
        (fun (once, loop) ->
          List.iter
            (fun plan ->
              Array.iter
                (fun stp ->
                  stp.project_after <- mapf stp.project_after;
                  match stp.kind with
                  | SJoin p | SSubtract p -> remap_prepared p
                  | SConstrain c -> stp.kind <- SConstrain (mapf c))
                plan.steps;
              plan.head.h_eqs <- List.map mapf plan.head.h_eqs;
              plan.head.h_consts <- mapf plan.head.h_consts)
            (once @ loop))
        t.plans);
  t

let parse_and_create ?options ?element_names ?domain_order ?file src =
  create ?options ?element_names ?domain_order (Parser.parse ?file src)

(* --- Evaluation --- *)

let prepare t prep ~delta =
  let man = Space.man t.sp in
  let compute source_bdd =
    let b = ref source_bdd in
    if prep.p_selects <> Bdd.bdd_true then b := Bdd.mk_and man !b prep.p_selects;
    List.iter (fun eq -> b := Bdd.mk_and man !b eq) prep.p_dup_eqs;
    if prep.p_away <> Bdd.bdd_true then b := Bdd.exist man ~cube:prep.p_away !b;
    (match prep.p_map with
    | Some map -> b := Bdd.replace man map !b
    | None -> ());
    !b
  in
  match delta with
  | Some d ->
    (* Delta sources have no version counter; key the cache on the
       delta BDD handle itself (stable within an iteration because the
       caller's delta only changes between iterations), guarded by the
       GC stamp since a collection can free the old delta and reuse its
       handle for a different function. *)
    let handle = (d : Bdd.t :> int) in
    let gcs = Bdd.gc_count man in
    let ch, cgc, cb = !(prep.p_cache_delta) in
    if prep.p_hoist && ch = handle && cgc = gcs then cb
    else begin
      let b = compute d in
      prep.p_cache_delta := (handle, gcs, b);
      b
    end
  | None ->
    let version = Relation.version prep.p_rel in
    let cached_version, cached = !(prep.p_cache_full) in
    if prep.p_hoist && cached_version = version then cached
    else begin
      let b = compute (Relation.bdd prep.p_rel) in
      prep.p_cache_full := (version, b);
      b
    end

let eval_plan t plan ~delta_at =
  let man = Space.man t.sp in
  let current = ref Bdd.bdd_true in
  let started = ref false in
  let i = ref 0 in
  let n = Array.length plan.steps in
  (* Incremental runs only: the delta carried into an application is
     typically tiny, so pre-constrain the pipeline with the prepared
     delta operand from the very first step — the joins in front of the
     delta position then stay delta-sized instead of full-sized.  This
     is sound: the conjunct's variables are those of the atom at [pos],
     whose last use is at or after [pos], so no earlier step's
     [project_after] cube can quantify them away prematurely.  Cold
     semi-naive rounds keep the planner's order untouched: their early
     rounds carry near-full deltas, where this seed would hurt. *)
  (match delta_at with
  | Some (pos, d) when t.track_fresh && pos > 0 -> (
    match plan.steps.(pos).kind with
    | SJoin prep ->
      current := prepare t prep ~delta:(Some d);
      started := true
    | SConstrain _ | SSubtract _ -> ())
  | _ -> ());
  while !i < n && (not !started || !current <> Bdd.bdd_false) do
    let stp = plan.steps.(!i) in
    (match stp.kind with
    | SJoin prep ->
      let g =
        prepare t prep
          ~delta:(match delta_at with Some (pos, d) when pos = !i -> Some d | _ -> None)
      in
      if !started then current := Bdd.relprod man ~cube:stp.project_after !current g
      else begin
        current := Bdd.exist man ~cube:stp.project_after g;
        started := true
      end
    | SConstrain c ->
      current := Bdd.mk_and man !current c;
      current := Bdd.exist man ~cube:stp.project_after !current;
      started := true
    | SSubtract prep ->
      let g = prepare t prep ~delta:None in
      current := Bdd.mk_diff man !current g;
      current := Bdd.exist man ~cube:stp.project_after !current;
      started := true);
    incr i
  done;
  if !started && !current = Bdd.bdd_false then Bdd.bdd_false
  else begin
    let b = ref !current in
    (match plan.head.h_map with
    | Some map -> b := Bdd.replace man map !b
    | None -> ());
    List.iter (fun eq -> b := Bdd.mk_and man !b eq) plan.head.h_eqs;
    if plan.head.h_consts <> Bdd.bdd_true then b := Bdd.mk_and man !b plan.head.h_consts;
    !b
  end

let set_budget t b =
  t.budget <- b;
  Bdd.set_budget (Space.man t.sp) b

(* Cooperative cancellation/deadline point between rule applications.
   The node-count and allocation limits are enforced inside [Bdd.mk]
   itself (amortized); here we only poll the flag and the clock, which
   a long cache-hit-heavy stretch would otherwise never reach. *)
let check_budget t =
  match t.budget with
  | None -> ()
  | Some b -> (
    match Budget.check_interrupt b with
    | Some reason -> raise (Bdd.Limit_exceeded reason)
    | None -> ())

let maybe_gc t =
  t.rule_apps <- t.rule_apps + 1;
  check_budget t;
  let man = Space.man t.sp in
  if t.opts.gc_interval > 0 && t.rule_apps mod t.opts.gc_interval = 0 then Bdd.gc man
  else if t.gc_threshold > 0 && Bdd.table_bytes man > t.gc_threshold then begin
    (* Capped run outgrew its threshold: compact now — dead nodes are
       the bulk of an uncollected table, and the level-clustered
       survivors keep the pager's working set tight.  If live data
       itself no longer fits the cap, back the threshold off so
       collections stay amortized against real growth. *)
    Bdd.gc man;
    let cap = Option.value t.opts.mem_cap_bytes ~default:0 in
    t.gc_threshold <- max cap (2 * Bdd.table_bytes man)
  end

(* Union the result into the head; returns whether new tuples arrived. *)
let commit t plan result ~track_delta =
  let man = Space.man t.sp in
  let head = plan.head.h_rel in
  let fresh = Bdd.mk_diff man result (Relation.bdd head) in
  if fresh = Bdd.bdd_false then false
  else begin
    Relation.set_bdd head (Bdd.mk_or man (Relation.bdd head) fresh);
    if track_delta then begin
      let p = Hashtbl.find t.pendings (Relation.name head) in
      p := Bdd.mk_or man !p fresh
    end;
    if t.track_fresh then begin
      let name = Relation.name head in
      let cur = Option.value (Hashtbl.find_opt t.incr_fresh name) ~default:Bdd.bdd_false in
      Hashtbl.replace t.incr_fresh name (Bdd.mk_or man cur fresh)
    end;
    true
  end

(* One rule application (evaluate + commit), attributing wall time and
   BDD op-cache lookups to the plan's cumulative counters. *)
let apply t plan ~delta_at ~track_delta =
  let man = Space.man t.sp in
  let t0 = Unix.gettimeofday () in
  let h0, m0 = Bdd.cache_stats man in
  let b = eval_plan t plan ~delta_at in
  let changed = commit t plan b ~track_delta in
  let h1, m1 = Bdd.cache_stats man in
  plan.ev_applications <- plan.ev_applications + 1;
  plan.ev_seconds <- plan.ev_seconds +. (Unix.gettimeofday () -. t0);
  plan.ev_lookups <- plan.ev_lookups + (h1 - h0) + (m1 - m0);
  changed

let collect_rule_stats t =
  List.concat_map
    (fun (once, loop) ->
      List.map
        (fun p ->
          {
            rs_rule = p.p_ir.Ralg.rule;
            rs_applications = p.ev_applications;
            rs_seconds = p.ev_seconds;
            rs_cache_lookups = p.ev_lookups;
          })
        (once @ loop))
    t.plans

(* --- Fixpoint certification: one non-committing application round ---

   The primitive behind [Pta.Certify]: evaluate every compiled plan in
   full (no deltas) against the relations' current values and diff the
   result against its head, committing nothing.  A true fixpoint of
   the loaded inputs yields no violations; any rule whose single
   application would add tuples is reported with the missing-tuple set
   as a BDD.  Because this shares the compiled plans but not the
   fixpoint driver, it certifies an answer independently of whichever
   evaluation path produced it (cold, incremental, capped, or an
   entirely different solver). *)

type violation = {
  vio_stratum : int;
  vio_rule : Ast.rule;
  vio_head : Relation.t;
  vio_fresh : Bdd.t;
      (* tuples this rule derives in one step that the head lacks;
         rooted only during the check — read it before the next GC *)
}

let check_fixpoint ?(max_violations = max_int) t =
  let man = Space.man t.sp in
  (* Root the accumulating diffs for the duration of the scan: later
     plan evaluations may trigger a collection, and under [Compact]
     the rooted list is rewritten in place with relocated handles —
     so the handles are re-read from [keep] at the end, never from
     stale captures. *)
  let keep = ref [] in
  let metas = ref [] in
  Bdd.add_root_list man keep;
  Fun.protect
    ~finally:(fun () -> Bdd.remove_root_list man keep)
    (fun () ->
      List.iteri
        (fun si (once, loop) ->
          List.iter
            (fun plan ->
              if List.length !metas < max_violations then begin
                check_budget t;
                let result = eval_plan t plan ~delta_at:None in
                let fresh = Bdd.mk_diff man result (Relation.bdd plan.head.h_rel) in
                if fresh <> Bdd.bdd_false then begin
                  keep := fresh :: !keep;
                  metas := (si, plan) :: !metas
                end
              end)
            (once @ loop))
        t.plans;
      List.rev
        (List.map2
           (fun (si, plan) fresh ->
             { vio_stratum = si; vio_rule = plan.p_ir.Ralg.rule; vio_head = plan.head.h_rel; vio_fresh = fresh })
           !metas !keep))

(* The delta BDD standard semi-naive evaluation feeds a recursive join
   position: the position's own accumulator. *)
let delta_source t plan pos =
  match plan.steps.(pos).kind with
  | SJoin prep -> !(Hashtbl.find t.deltas (Relation.name prep.p_rel))
  | SConstrain _ | SSubtract _ -> fail "delta position %d is not a join" pos

(* One fixpoint round over a stratum's loop rules; shared by [run] and
   [run_incremental].  Returns whether anything committed. *)
let loop_round t loop =
  let changed = ref false in
  List.iter
    (fun plan ->
      if plan.delta_positions <> [] then
        List.iter
          (fun pos ->
            if apply t plan ~delta_at:(Some (pos, delta_source t plan pos)) ~track_delta:true then changed := true;
            maybe_gc t)
          plan.delta_positions
      else begin
        if apply t plan ~delta_at:None ~track_delta:true then changed := true;
        maybe_gc t
      end)
    loop;
  !changed

(* Rotate each pending accumulator into its delta for the next round;
   returns whether any delta is non-empty. *)
let rotate_pendings t (st : Stratify.stratum) =
  let any = ref false in
  List.iter
    (fun p ->
      let d = Hashtbl.find t.deltas p and pe = Hashtbl.find t.pendings p in
      d := !pe;
      pe := Bdd.bdd_false;
      if !d <> Bdd.bdd_false then any := true)
    st.Stratify.preds;
  !any

let check_iteration_budget t iterations =
  t.cur_iterations <- iterations;
  match t.budget with
  | None -> ()
  | Some b -> (
    match Budget.check_iterations b ~iterations with
    | Some reason -> raise (Bdd.Limit_exceeded reason)
    | None -> ())

let make_stats t ~t0 ~iterations =
  let man = Space.man t.sp in
  let s =
    {
      rule_applications = t.rule_apps;
      iterations;
      strata = List.length t.strata;
      peak_live_nodes = Bdd.peak_live_nodes man;
      solve_seconds = Unix.gettimeofday () -. t0;
      gcs = Bdd.gc_count man;
      op_cache = Bdd.cache_stats_by_class man;
      rule_stats = collect_rule_stats t;
      arena = Bdd.arena_stats man;
    }
  in
  t.stats <- Some s;
  s

let run t =
  let t0 = Unix.gettimeofday () in
  t.cur_iterations <- 0;
  t.track_fresh <- false;
  Hashtbl.reset t.incr_fresh;
  (* A previous run may have been aborted mid-round, leaving tuples in
     the pending accumulators.  Relations themselves are monotone (every
     commit unions into the head), so clearing the pendings and
     re-seeding deltas from the full relations below makes [run]
     restartable: it re-converges to the same fixpoint. *)
  Hashtbl.iter (fun _ pe -> pe := Bdd.bdd_false) t.pendings;
  let iterations = ref 0 in
  List.iter2
    (fun (st : Stratify.stratum) (once, loop) ->
      List.iter
        (fun plan ->
          ignore (apply t plan ~delta_at:None ~track_delta:false);
          maybe_gc t)
        once;
      if loop <> [] then begin
        (* Seed deltas with current contents. *)
        List.iter
          (fun p ->
            let d = Hashtbl.find t.deltas p in
            d := Relation.bdd (relation t p))
          st.Stratify.preds;
        let continue = ref true in
        while !continue do
          incr iterations;
          check_iteration_budget t !iterations;
          let changed = loop_round t loop in
          if t.opts.semi_naive then continue := rotate_pendings t st else continue := changed
        done
      end)
    t.strata t.plans;
  make_stats t ~t0 ~iterations:!iterations

(* --- Incremental fixpoint --- *)

(* The SJoin positions of [plan] whose source relation gained tuples
   this run, paired with the source's name.  [skip_delta] excludes the
   recursive positions (they are fed by the delta accumulators, not a
   one-shot pass).  The fresh BDD itself is re-read from [incr_fresh]
   at each application ([fresh_of]): a compacting collection between
   applications renumbers handles, and commits may grow the fresh set —
   both make a captured handle stale (re-reading a grown superset is
   sound: the pass covers at least the combinations it did before). *)
let fresh_positions t plan ~skip_delta =
  let acc = ref [] in
  Array.iteri
    (fun i stp ->
      match stp.kind with
      | SJoin prep ->
        if not (skip_delta && List.mem i plan.delta_positions) then (
          match Hashtbl.find_opt t.incr_fresh (Relation.name prep.p_rel) with
          | Some f when f <> Bdd.bdd_false -> acc := (i, Relation.name prep.p_rel) :: !acc
          | Some _ | None -> ())
      | SConstrain _ | SSubtract _ -> ())
    plan.steps;
  List.rev !acc

let fresh_of t name = Option.value (Hashtbl.find_opt t.incr_fresh name) ~default:Bdd.bdd_false

let run_incremental t ~changed =
  if not t.opts.semi_naive then run t
  else begin
    let t0 = Unix.gettimeofday () in
    t.cur_iterations <- 0;
    Hashtbl.iter (fun _ pe -> pe := Bdd.bdd_false) t.pendings;
    Hashtbl.reset t.incr_fresh;
    t.track_fresh <- true;
    List.iter (fun (name, added) -> if added <> Bdd.bdd_false then Hashtbl.replace t.incr_fresh name added) changed;
    let iterations = ref 0 in
    Fun.protect
      ~finally:(fun () -> t.track_fresh <- false)
      (fun () ->
        List.iter2
          (fun (st : Stratify.stratum) (once, loop) ->
            (* Once rules: re-evaluate only at body positions whose
               source gained tuples, against the fresh part alone.  A
               rule with multiple changed positions runs once per
               position — each pass holds the others at their full (new)
               value, so together they cover every new combination.
               Unchanged rules cost nothing. *)
            List.iter
              (fun plan ->
                let track = Hashtbl.mem t.pendings (Relation.name plan.head.h_rel) in
                List.iter
                  (fun (i, src) ->
                    let f = fresh_of t src in
                    if f <> Bdd.bdd_false then ignore (apply t plan ~delta_at:(Some (i, f)) ~track_delta:track);
                    maybe_gc t)
                  (fresh_positions t plan ~skip_delta:false))
              once;
            if loop <> [] then begin
              (* Pre-pass: changed non-recursive body atoms feed the
                 loop rules once, at their fresh part only. *)
              List.iter
                (fun plan ->
                  List.iter
                    (fun (i, src) ->
                      let f = fresh_of t src in
                      if f <> Bdd.bdd_false then ignore (apply t plan ~delta_at:(Some (i, f)) ~track_delta:true);
                      maybe_gc t)
                    (fresh_positions t plan ~skip_delta:true))
                loop;
              (* Seed the recursive deltas with only the tuples that are
                 new this run — external input deltas plus everything the
                 once rules and pre-pass just committed — instead of the
                 full relations.  This is the incremental saving: an
                 unchanged SCC converges in one empty round. *)
              let any = ref false in
              List.iter
                (fun p ->
                  let d = Hashtbl.find t.deltas p and pe = Hashtbl.find t.pendings p in
                  d := Option.value (Hashtbl.find_opt t.incr_fresh p) ~default:Bdd.bdd_false;
                  pe := Bdd.bdd_false;
                  if !d <> Bdd.bdd_false then any := true)
                st.Stratify.preds;
              (* Rounds run the recursive plans only.  A loop plan with
                 no delta position has a body free of same-stratum atoms
                 (positive atoms always compile to joins, and only
                 same-stratum joins are marked as delta positions), so
                 its inputs cannot change during the loop: the pre-pass
                 above already produced everything it can contribute,
                 and re-applying it full-size every round — as the cold
                 solver must — is pure waste here. *)
              let recursive = List.filter (fun plan -> plan.delta_positions <> []) loop in
              let continue = ref !any in
              while !continue do
                incr iterations;
                check_iteration_budget t !iterations;
                ignore (loop_round t recursive);
                continue := rotate_pendings t st
              done
            end)
          t.strata t.plans);
    make_stats t ~t0 ~iterations:!iterations
  end

let structured t f =
  match f () with
  | s -> Ok s
  | exception Bdd.Limit_exceeded reason ->
    Error
      (Solver_error.Budget_exhausted
         {
           Solver_error.reason;
           partial_iterations = t.cur_iterations;
           live_nodes = Bdd.live_nodes (Space.man t.sp);
         })
  | exception Engine_error msg -> Error (Solver_error.Internal msg)
  | exception Solver_error.Error e -> Error e (* pager IO/corruption faults *)

let solve t = structured t (fun () -> run t)
let solve_incremental t ~changed = structured t (fun () -> run_incremental t ~changed)

let last_stats t = t.stats

(* --- Explain --- *)

let explain fmt t =
  Format.fprintf fmt "domains:@\n";
  List.iter
    (fun (dname, d) ->
      let insts = List.length (Space.instances t.sp d) in
      Format.fprintf fmt "  %s: size %d, %d bits, %d physical instance%s@\n" dname (Domain.size d) (Domain.bits d)
        insts
        (if insts = 1 then "" else "s"))
    t.res.Resolve.domains;
  Format.fprintf fmt "passes:@\n";
  List.iter
    (fun (p : Ralg.pass) ->
      Format.fprintf fmt "  [%s] %-10s %s@\n" (if p.Ralg.pass_on then "on " else "off") p.Ralg.pass_name
        p.Ralg.pass_doc)
    (Ralg.pass_list (toggles_of_options t.opts) ~stratum_preds:[]);
  List.iteri
    (fun si (once, loop) ->
      Format.fprintf fmt "stratum %d (%d once, %d loop):@\n" (si + 1) (List.length once) (List.length loop);
      List.iter (fun ir -> Ralg.pp_plan t.res fmt ir) (once @ loop))
    t.ir_plans;
  match t.stats with
  | Some s when List.exists (fun r -> r.rs_applications > 0) s.rule_stats ->
    Format.fprintf fmt "per-rule stats (cumulative over %d applications):@\n" s.rule_applications;
    let sorted = List.sort (fun a b -> compare b.rs_seconds a.rs_seconds) s.rule_stats in
    List.iter
      (fun r ->
        Format.fprintf fmt "  %9.3fs %7d apps %12d bdd-cache-lookups  %a%a@\n" r.rs_seconds r.rs_applications
          r.rs_cache_lookups Ast.pp_pos_prefix r.rs_rule Ast.pp_atom r.rs_rule.Ast.head)
      sorted
  | Some _ | None -> ()
